package circuit

import (
	"math/rand"
	"testing"
)

// equivalent checks behavioural equality of two circuits with the same
// interface over random stimulus.
func equivalent(t *testing.T, a, b *Circuit, vectors int, seed int64) {
	t.Helper()
	if len(a.Inputs) != len(b.Inputs) || len(a.Latches) != len(b.Latches) ||
		len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("interface mismatch: %v vs %v", a.Stats(), b.Stats())
	}
	simA, err := NewSimulator(a)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewSimulator(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < vectors; v++ {
		st := make([]bool, len(a.Latches))
		in := make([]bool, len(a.Inputs))
		for i := range st {
			st[i] = rng.Intn(2) == 0
		}
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		ao, an := simA.Step(st, in)
		bo, bn := simB.Step(st, in)
		for k := range ao {
			if ao[k] != bo[k] {
				t.Fatalf("output %d mismatch at vector %d", k, v)
			}
		}
		for k := range an {
			if an[k] != bn[k] {
				t.Fatalf("next-state %d mismatch at vector %d", k, v)
			}
		}
	}
}

func TestOptimizeConstantFolding(t *testing.T) {
	c := New("cf")
	a := c.AddInput("a")
	one := c.AddGate("one", Const1)
	zero := c.AddGate("zero", Const0)
	andD := c.AddGate("andD", And, a, zero)    // → 0
	orD := c.AddGate("orD", Or, a, one)        // → 1
	norC := c.AddGate("norC", Nor, zero, zero) // → 1
	x := c.AddGate("x", Xor, andD, orD)        // 0 ⊕ 1 = 1
	fin := c.AddGate("fin", And, x, norC)
	c.MarkOutput(fin)
	opt, res, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConstFolded == 0 {
		t.Fatal("expected constant folding")
	}
	equivalent(t, c, opt, 8, 1)
	// Everything folds to constant 1: the optimized circuit should be
	// tiny (input + const gate).
	if opt.NumCombGates() > 1 {
		t.Fatalf("expected full collapse, got %d gates:\n%s",
			opt.NumCombGates(), BenchString(opt))
	}
}

func TestOptimizeBufferChains(t *testing.T) {
	c := New("bufs")
	a := c.AddInput("a")
	b1 := c.AddGate("b1", Buf, a)
	b2 := c.AddGate("b2", Buf, b1)
	b3 := c.AddGate("b3", Buf, b2)
	n := c.AddGate("n", Not, b3)
	c.MarkOutput(n)
	opt, res, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.BuffersCollapsed != 3 {
		t.Fatalf("BuffersCollapsed = %d, want 3", res.BuffersCollapsed)
	}
	if opt.NumCombGates() != 1 {
		t.Fatalf("want a single NOT, got:\n%s", BenchString(opt))
	}
	equivalent(t, c, opt, 4, 2)
}

func TestOptimizeDeadLogic(t *testing.T) {
	c := New("dead")
	a := c.AddInput("a")
	b := c.AddInput("b")
	used := c.AddGate("used", And, a, b)
	_ = c.AddGate("dead1", Or, a, b)
	d2 := c.AddGate("dead2", Xor, a, b)
	_ = c.AddGate("dead3", Not, d2)
	c.MarkOutput(used)
	opt, res, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadRemoved != 3 {
		t.Fatalf("DeadRemoved = %d, want 3", res.DeadRemoved)
	}
	if opt.NumCombGates() != 1 {
		t.Fatalf("optimized gates: %d", opt.NumCombGates())
	}
	equivalent(t, c, opt, 8, 3)
}

func TestOptimizeNeutralInputsCollapse(t *testing.T) {
	// AND(x, 1, 1) folds to x; OR(x, 0) folds to x.
	c := New("neutral")
	x := c.AddInput("x")
	one := c.AddGate("one", Const1)
	zero := c.AddGate("zero", Const0)
	a := c.AddGate("a", And, x, one, one)
	o := c.AddGate("o", Or, a, zero)
	c.MarkOutput(o)
	opt, _, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumCombGates() != 0 {
		t.Fatalf("expected output to fold to the input, got:\n%s", BenchString(opt))
	}
	equivalent(t, c, opt, 4, 4)
}

func TestOptimizePreservesLatches(t *testing.T) {
	// A latch whose D input is constant must survive with the constant.
	c := New("lconst")
	zero := c.AddGate("zero", Const0)
	q := c.AddLatch("q", zero)
	out := c.AddGate("out", Not, q)
	c.MarkOutput(out)
	opt, _, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Latches) != 1 {
		t.Fatal("latch dropped")
	}
	equivalent(t, c, opt, 8, 5)
}

func TestOptimizeRejectsCyclic(t *testing.T) {
	c := New("cyc")
	a := c.AddInput("a")
	g1 := c.AddGate("g1", And, a, a)
	g2 := c.AddGate("g2", Or, g1, a)
	c.Gates[g1].Fanins[1] = g2
	if _, _, err := Optimize(c); err == nil {
		t.Fatal("expected cycle error")
	}
}
