package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a netlist in ISCAS-89 BENCH format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(f)
//	f = AND(a, b)
//	q = DFF(d)
//
// Signal definitions may appear in any order (DFF feedback loops are the
// norm). Gate type names are case-insensitive.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type protoGate struct {
		typ    GateType
		fanins []string
		line   int
	}
	protos := make(map[string]protoGate) // defined signals
	var inputOrder, outputOrder []string
	var defOrder []string // definition order of non-input signals

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT"):
			sig, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %v", lineNo, err)
			}
			if _, dup := protos[sig]; dup {
				return nil, fmt.Errorf("bench line %d: signal %q already defined", lineNo, sig)
			}
			protos[sig] = protoGate{typ: Input, line: lineNo}
			inputOrder = append(inputOrder, sig)
		case strings.HasPrefix(up, "OUTPUT"):
			sig, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %v", lineNo, err)
			}
			outputOrder = append(outputOrder, sig)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: cannot parse %q", lineNo, line)
			}
			sig := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if open < 0 || close < open {
				return nil, fmt.Errorf("bench line %d: malformed gate %q", lineNo, rhs)
			}
			tname := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			typ, ok := benchType(tname)
			if !ok {
				return nil, fmt.Errorf("bench line %d: unknown gate type %q", lineNo, tname)
			}
			var fanins []string
			for _, tok := range strings.Split(rhs[open+1:close], ",") {
				tok = strings.TrimSpace(tok)
				if tok != "" {
					fanins = append(fanins, tok)
				}
			}
			mn, mx := typ.arity()
			if len(fanins) < mn || len(fanins) > mx {
				return nil, fmt.Errorf("bench line %d: %s with %d fanins", lineNo, tname, len(fanins))
			}
			if _, dup := protos[sig]; dup {
				return nil, fmt.Errorf("bench line %d: signal %q already defined", lineNo, sig)
			}
			protos[sig] = protoGate{typ: typ, fanins: fanins, line: lineNo}
			defOrder = append(defOrder, sig)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Check every referenced signal is defined.
	for sig, p := range protos {
		for _, f := range p.fanins {
			if _, ok := protos[f]; !ok {
				return nil, fmt.Errorf("bench line %d: signal %q uses undefined %q", p.line, sig, f)
			}
		}
	}
	for _, sig := range outputOrder {
		if _, ok := protos[sig]; !ok {
			return nil, fmt.Errorf("bench: OUTPUT(%s) is undefined", sig)
		}
	}

	// Build the circuit: inputs first, then DFFs (so feedback resolves),
	// then combinational gates in dependency order.
	c := New(name)
	for _, sig := range inputOrder {
		c.AddInput(sig)
	}
	// DFF placeholders.
	var dffSigs []string
	for _, sig := range defOrder {
		if protos[sig].typ == DFF {
			dffSigs = append(dffSigs, sig)
			idx := len(c.Gates)
			c.Gates = append(c.Gates, Gate{Name: sig, Type: DFF, Fanins: []int{0}})
			c.byName[sig] = idx
			c.Latches = append(c.Latches, idx)
		}
	}
	// Combinational gates in topological order via DFS over names.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var emit func(sig string) error
	emit = func(sig string) error {
		if _, done := c.byName[sig]; done {
			return nil
		}
		switch color[sig] {
		case gray:
			return fmt.Errorf("bench: combinational cycle through %q", sig)
		case black:
			return nil
		}
		color[sig] = gray
		p := protos[sig]
		for _, f := range p.fanins {
			if err := emit(f); err != nil {
				return err
			}
		}
		color[sig] = black
		fan := make([]int, len(p.fanins))
		for i, f := range p.fanins {
			fan[i] = c.byName[f]
		}
		c.AddGate(sig, p.typ, fan...)
		return nil
	}
	for _, sig := range defOrder {
		if protos[sig].typ == DFF {
			continue
		}
		if err := emit(sig); err != nil {
			return nil, err
		}
	}
	// Resolve DFF fanins.
	for _, sig := range dffSigs {
		d := protos[sig].fanins[0]
		c.Gates[c.byName[sig]].Fanins[0] = c.byName[d]
	}
	for _, sig := range outputOrder {
		c.MarkOutput(c.byName[sig])
	}
	return c, nil
}

// ParseBenchString parses BENCH text.
func ParseBenchString(name, s string) (*Circuit, error) {
	return ParseBench(name, strings.NewReader(s))
}

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	sig := strings.TrimSpace(line[open+1 : close])
	if sig == "" {
		return "", fmt.Errorf("empty signal name in %q", line)
	}
	return sig, nil
}

func benchType(name string) (GateType, bool) {
	switch name {
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	case "NOT", "INV":
		return Not, true
	case "BUF", "BUFF":
		return Buf, true
	case "DFF", "FF":
		return DFF, true
	case "CONST0", "GND", "ZERO":
		return Const0, true
	case "CONST1", "VDD", "ONE":
		return Const1, true
	}
	return 0, false
}

// WriteBench writes the circuit in BENCH format. Gates are emitted in
// index order; the output is re-parsable by ParseBench.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	for _, i := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[i].Name)
	}
	for _, i := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[i].Name)
	}
	for _, g := range c.Gates {
		switch g.Type {
		case Input:
			continue
		case Const0:
			fmt.Fprintf(bw, "%s = CONST0()\n", g.Name)
		case Const1:
			fmt.Fprintf(bw, "%s = CONST1()\n", g.Name)
		default:
			names := make([]string, len(g.Fanins))
			for k, f := range g.Fanins {
				names[k] = c.Gates[f].Name
			}
			fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
		}
	}
	return bw.Flush()
}

// BenchString renders the circuit as BENCH text.
func BenchString(c *Circuit) string {
	var sb strings.Builder
	_ = WriteBench(&sb, c)
	return sb.String()
}

// SortedOutputs returns output gate names sorted (for stable test output).
func (c *Circuit) SortedOutputs() []string {
	out := make([]string, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = c.Gates[o].Name
	}
	sort.Strings(out)
	return out
}
