package circuit_test

import (
	"math/rand"
	"testing"

	"allsatpre/internal/circuit"
	"allsatpre/internal/gen"
	"allsatpre/internal/tseitin"
)

// TestSuiteBenchRoundTrip writes every generated benchmark circuit as
// BENCH text, re-parses it, and checks behavioural equivalence over
// random stimulus with 64-way parallel simulation.
func TestSuiteBenchRoundTrip(t *testing.T) {
	suite := gen.Suite()
	suite = append(suite,
		gen.NamedCircuit{Name: "mult5", Circuit: gen.MultCore(5)},
		gen.NamedCircuit{Name: "counter-rst", Circuit: gen.Counter(6, true, true)},
		gen.NamedCircuit{Name: "counter-free", Circuit: gen.Counter(5, false, false)},
	)
	rng := rand.New(rand.NewSource(2024))
	for _, nc := range suite {
		text := circuit.BenchString(nc.Circuit)
		c2, err := circuit.ParseBenchString(nc.Name+"-rt", text)
		if err != nil {
			t.Fatalf("%s: re-parse failed: %v\n%s", nc.Name, err, text)
		}
		if len(c2.Latches) != len(nc.Circuit.Latches) || len(c2.Inputs) != len(nc.Circuit.Inputs) {
			t.Fatalf("%s: interface changed on round trip", nc.Name)
		}
		sim1, err := circuit.NewSimulator(nc.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		sim2, err := circuit.NewSimulator(c2)
		if err != nil {
			t.Fatal(err)
		}
		nL, nI := len(nc.Circuit.Latches), len(nc.Circuit.Inputs)
		st1 := make([]uint64, nL)
		st2 := make([]uint64, nL)
		for i := range st1 {
			v := rng.Uint64()
			st1[i], st2[i] = v, v
		}
		for step := 0; step < 8; step++ {
			in := make([]uint64, nI)
			for i := range in {
				in[i] = rng.Uint64()
			}
			var o1, o2 []uint64
			o1, st1 = sim1.Step64(st1, in)
			o2, st2 = sim2.Step64(st2, in)
			for k := range o1 {
				if o1[k] != o2[k] {
					t.Fatalf("%s: outputs diverge at step %d", nc.Name, step)
				}
			}
			for k := range st1 {
				if st1[k] != st2[k] {
					t.Fatalf("%s: states diverge at step %d", nc.Name, step)
				}
			}
		}
	}
}

// TestSuiteOptimizeEquivalence runs the optimizer over every generated
// circuit and checks behavioural equivalence with 64-way simulation.
func TestSuiteOptimizeEquivalence(t *testing.T) {
	suite := gen.Suite()
	suite = append(suite,
		gen.NamedCircuit{Name: "mult5", Circuit: gen.MultCore(5)},
		gen.NamedCircuit{Name: "counter-rst", Circuit: gen.Counter(6, true, true)},
	)
	rng := rand.New(rand.NewSource(808))
	for _, nc := range suite {
		opt, res, err := circuit.Optimize(nc.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", nc.Name, err)
		}
		if opt.NumCombGates() > nc.Circuit.NumCombGates() {
			t.Fatalf("%s: optimizer grew the circuit (%d -> %d)",
				nc.Name, nc.Circuit.NumCombGates(), opt.NumCombGates())
		}
		_ = res
		sim1, _ := circuit.NewSimulator(nc.Circuit)
		sim2, err := circuit.NewSimulator(opt)
		if err != nil {
			t.Fatalf("%s: optimized circuit broken: %v", nc.Name, err)
		}
		nL, nI := len(nc.Circuit.Latches), len(nc.Circuit.Inputs)
		st1 := make([]uint64, nL)
		st2 := make([]uint64, nL)
		for i := range st1 {
			v := rng.Uint64()
			st1[i], st2[i] = v, v
		}
		for step := 0; step < 8; step++ {
			in := make([]uint64, nI)
			for i := range in {
				in[i] = rng.Uint64()
			}
			var o1, o2 []uint64
			o1, st1 = sim1.Step64(st1, in)
			o2, st2 = sim2.Step64(st2, in)
			for k := range o1 {
				if o1[k] != o2[k] {
					t.Fatalf("%s: optimizer changed outputs at step %d", nc.Name, step)
				}
			}
			for k := range st1 {
				if st1[k] != st2[k] {
					t.Fatalf("%s: optimizer changed state at step %d", nc.Name, step)
				}
			}
		}
	}
}

// TestSuiteTseitinModelCounts checks, for each suite circuit small enough
// to count, that the Tseitin CNF has exactly 2^(inputs+latches) models —
// i.e. the encoding is exact (every signal functionally determined).
func TestSuiteTseitinModelCounts(t *testing.T) {
	for _, nc := range gen.Suite() {
		free := len(nc.Circuit.Inputs) + len(nc.Circuit.Latches)
		if nc.Circuit.NumGates() > 22 || free > 16 {
			continue
		}
		enc, err := tseitin.Encode(nc.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", nc.Name, err)
		}
		want := 1 << uint(free)
		if got := enc.F.CountModels(); got != want {
			t.Fatalf("%s: %d models, want %d", nc.Name, got, want)
		}
	}
}
