package circuit

import (
	"strings"
	"testing"
)

func TestWriteVCDBasic(t *testing.T) {
	c := New("vcd demo!")
	a := c.AddInput("a")
	q := c.AddLatch("q", a)
	n := c.AddGate("n", Not, q)
	c.MarkOutput(n)
	states := [][]bool{{false}, {true}, {false}}
	inputs := [][]bool{{true}, {false}}
	var sb strings.Builder
	if err := WriteVCD(&sb, c, states, inputs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale", "$scope module vcd_demo_", "$var wire 1 ! a $end",
		"$enddefinitions", "#0", "#1", "#2", "#3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The latch q toggles 0→1→0, so its id must appear with both values.
	qID := string(rune('!' + q))
	if !strings.Contains(out, "1"+qID+"\n") || !strings.Contains(out, "0"+qID+"\n") {
		t.Errorf("latch toggles missing:\n%s", out)
	}
}

func TestWriteVCDOnlyChangesEmitted(t *testing.T) {
	// A constant-input trace emits each signal once (at #0) and never
	// again.
	c := New("const")
	a := c.AddInput("a")
	b := c.AddGate("b", Buf, a)
	c.MarkOutput(b)
	states := [][]bool{{}, {}, {}}
	inputs := [][]bool{{true}, {true}}
	var sb strings.Builder
	if err := WriteVCD(&sb, c, states, inputs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	aID := string(rune('!' + a))
	if n := strings.Count(out, "1"+aID+"\n"); n != 1 {
		t.Errorf("input emitted %d times, want 1:\n%s", n, out)
	}
}

func TestWriteVCDDimensionErrors(t *testing.T) {
	c := New("dim")
	c.AddInput("a")
	q := c.AddLatch("q", 0)
	_ = q
	var sb strings.Builder
	if err := WriteVCD(&sb, c, [][]bool{{false}}, [][]bool{{true}}); err == nil {
		t.Error("states/inputs length mismatch accepted")
	}
	if err := WriteVCD(&sb, c, [][]bool{{false, true}, {false, true}}, [][]bool{{true}}); err == nil {
		t.Error("state width mismatch accepted")
	}
	if err := WriteVCD(&sb, c, [][]bool{{false}, {false}}, [][]bool{{true, false}}); err == nil {
		t.Error("input width mismatch accepted")
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("a b/c") != "a_b_c" || sanitize("") != "top" {
		t.Error("sanitize")
	}
}

func TestVCDIdentifierCodes(t *testing.T) {
	// More than 94 gates must get multi-character ids without collision.
	c := New("many")
	prev := c.AddInput("i0")
	for g := 0; g < 200; g++ {
		prev = c.AddGate(strings.Repeat("g", 1)+"_"+strings.Repeat("x", g%3+1)+string(rune('a'+g%26))+string(rune('0'+g%10))+string(rune('0'+(g/10)%10))+string(rune('0'+(g/100)%10)), Not, prev)
	}
	c.MarkOutput(prev)
	states := [][]bool{{}, {}}
	inputs := [][]bool{{true}}
	var sb strings.Builder
	if err := WriteVCD(&sb, c, states, inputs); err != nil {
		t.Fatal(err)
	}
	// Count distinct $var ids.
	ids := map[string]bool{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "$var wire 1 ") {
			fields := strings.Fields(line)
			if ids[fields[3]] {
				t.Fatalf("duplicate VCD id %q", fields[3])
			}
			ids[fields[3]] = true
		}
	}
	if len(ids) != c.NumGates() {
		t.Fatalf("%d ids for %d gates", len(ids), c.NumGates())
	}
}
