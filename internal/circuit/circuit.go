// Package circuit models gate-level sequential netlists in the ISCAS-89
// style: primary inputs, combinational gates, and D flip-flops. It provides
// BENCH-format parsing and writing, structural analysis (topological
// ordering, levelization, cone of influence), and binary / 64-way parallel
// / ternary simulation.
//
// A netlist here is a slice of gates; every signal is the output of exactly
// one gate. D flip-flops are gates whose output is the latch's present-
// state value Q and whose single fanin is the next-state function D.
package circuit

import (
	"fmt"
	"sort"

	"allsatpre/internal/lit"
)

// GateType enumerates the supported gate functions.
type GateType int

// Gate types. Input gates have no fanins; Const gates have none either.
// DFF gates have exactly one fanin (the D next-state signal).
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	DFF
)

var typeNames = map[GateType]string{
	Input: "INPUT", Const0: "CONST0", Const1: "CONST1",
	Buf: "BUF", Not: "NOT", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR", DFF: "DFF",
}

func (t GateType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// arity returns the legal fanin count range for a gate type.
func (t GateType) arity() (min, max int) {
	switch t {
	case Input, Const0, Const1:
		return 0, 0
	case Buf, Not, DFF:
		return 1, 1
	case Xor, Xnor:
		return 2, 2
	default:
		return 2, 1 << 30
	}
}

// Gate is one netlist node. Fanins index into Circuit.Gates.
type Gate struct {
	Name   string
	Type   GateType
	Fanins []int
}

// Circuit is a sequential netlist.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // primary input gate indexes, in declaration order
	Outputs []int // primary output gate indexes, in declaration order
	Latches []int // DFF gate indexes, in declaration order
	byName  map[string]int
}

// New creates an empty circuit.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// NumGates returns the total gate count (including inputs and latches).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumCombGates counts gates that are neither inputs, constants, nor DFFs.
func (c *Circuit) NumCombGates() int {
	n := 0
	for _, g := range c.Gates {
		switch g.Type {
		case Input, Const0, Const1, DFF:
		default:
			n++
		}
	}
	return n
}

// IndexOf returns the gate index for a signal name, or -1.
func (c *Circuit) IndexOf(name string) int {
	if i, ok := c.byName[name]; ok {
		return i
	}
	return -1
}

// GateName returns the name of gate i.
func (c *Circuit) GateName(i int) string { return c.Gates[i].Name }

// AddGate appends a gate, validating arity and name uniqueness.
func (c *Circuit) AddGate(name string, t GateType, fanins ...int) int {
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("circuit: duplicate signal %q", name))
	}
	mn, mx := t.arity()
	if len(fanins) < mn || len(fanins) > mx {
		panic(fmt.Sprintf("circuit: %v gate %q with %d fanins", t, name, len(fanins)))
	}
	for _, f := range fanins {
		if f < 0 || f >= len(c.Gates) {
			panic(fmt.Sprintf("circuit: gate %q fanin %d out of range", name, f))
		}
	}
	idx := len(c.Gates)
	c.Gates = append(c.Gates, Gate{Name: name, Type: t, Fanins: append([]int(nil), fanins...)})
	c.byName[name] = idx
	switch t {
	case Input:
		c.Inputs = append(c.Inputs, idx)
	case DFF:
		c.Latches = append(c.Latches, idx)
	}
	return idx
}

// AddInput appends a primary input.
func (c *Circuit) AddInput(name string) int { return c.AddGate(name, Input) }

// AddLatch appends a D flip-flop fed by gate d.
func (c *Circuit) AddLatch(name string, d int) int { return c.AddGate(name, DFF, d) }

// MarkOutput marks gate i as a primary output.
func (c *Circuit) MarkOutput(i int) {
	if i < 0 || i >= len(c.Gates) {
		panic("circuit: MarkOutput out of range")
	}
	c.Outputs = append(c.Outputs, i)
}

// EvalGate computes a gate's output from its fanin values.
func EvalGate(t GateType, in []bool) bool {
	switch t {
	case Const0:
		return false
	case Const1:
		return true
	case Buf, DFF:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		r := true
		for _, b := range in {
			r = r && b
		}
		if t == Nand {
			return !r
		}
		return r
	case Or, Nor:
		r := false
		for _, b := range in {
			r = r || b
		}
		if t == Nor {
			return !r
		}
		return r
	case Xor:
		return in[0] != in[1]
	case Xnor:
		return in[0] == in[1]
	}
	panic(fmt.Sprintf("circuit: EvalGate on %v", t))
}

// EvalGateTern is the ternary counterpart of EvalGate with controlling-
// value short circuits (0 dominates AND, 1 dominates OR).
func EvalGateTern(t GateType, in []lit.Tern) lit.Tern {
	switch t {
	case Const0:
		return lit.False
	case Const1:
		return lit.True
	case Buf, DFF:
		return in[0]
	case Not:
		return in[0].Not()
	case And, Nand:
		r := lit.True
		for _, b := range in {
			r = r.And(b)
		}
		if t == Nand {
			return r.Not()
		}
		return r
	case Or, Nor:
		r := lit.False
		for _, b := range in {
			r = r.Or(b)
		}
		if t == Nor {
			return r.Not()
		}
		return r
	case Xor:
		return in[0].Xor(in[1])
	case Xnor:
		return in[0].Xor(in[1]).Not()
	}
	panic(fmt.Sprintf("circuit: EvalGateTern on %v", t))
}

// TopoOrder returns a topological order of all gates for combinational
// evaluation: inputs, constants, and DFF outputs count as sources; DFF D
// inputs are sinks. It returns an error if a combinational cycle exists.
func (c *Circuit) TopoOrder() ([]int, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(c.Gates))
	order := make([]int, 0, len(c.Gates))
	// Iterative DFS to survive deep circuits.
	type frame struct{ gate, next int }
	for start := range c.Gates {
		if color[start] != white {
			continue
		}
		stack := []frame{{gate: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			g := &c.Gates[f.gate]
			// Source gates (and DFFs, whose fanin is a sequential edge)
			// have no combinational dependencies.
			deps := g.Fanins
			if g.Type == DFF || g.Type == Input || g.Type == Const0 || g.Type == Const1 {
				deps = nil
			}
			if f.next < len(deps) {
				d := deps[f.next]
				f.next++
				switch color[d] {
				case white:
					color[d] = gray
					stack = append(stack, frame{gate: d})
				case gray:
					return nil, fmt.Errorf("circuit %s: combinational cycle through %q", c.Name, c.Gates[d].Name)
				}
				continue
			}
			color[f.gate] = black
			order = append(order, f.gate)
			stack = stack[:len(stack)-1]
		}
	}
	return order, nil
}

// Levels assigns a combinational level to every gate: sources are level 0,
// every other gate is 1 + max fanin level (DFF D edges do not count).
func (c *Circuit) Levels() ([]int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	lvl := make([]int, len(c.Gates))
	for _, i := range order {
		g := &c.Gates[i]
		if g.Type == Input || g.Type == Const0 || g.Type == Const1 || g.Type == DFF {
			lvl[i] = 0
			continue
		}
		maxIn := -1
		for _, f := range g.Fanins {
			if lvl[f] > maxIn {
				maxIn = lvl[f]
			}
		}
		lvl[i] = maxIn + 1
	}
	return lvl, nil
}

// Depth returns the maximum combinational level.
func (c *Circuit) Depth() (int, error) {
	lvl, err := c.Levels()
	if err != nil {
		return 0, err
	}
	d := 0
	for _, l := range lvl {
		if l > d {
			d = l
		}
	}
	return d, nil
}

// FanoutCounts returns, for every gate, how many gates list it as a fanin.
func (c *Circuit) FanoutCounts() []int {
	out := make([]int, len(c.Gates))
	for _, g := range c.Gates {
		for _, f := range g.Fanins {
			out[f]++
		}
	}
	return out
}

// ConeOfInfluence returns the set of gate indexes that the given roots
// depend on, transitively, crossing latch boundaries (so it is the
// sequential COI).
func (c *Circuit) ConeOfInfluence(roots []int) map[int]bool {
	seen := make(map[int]bool)
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[i] {
			continue
		}
		seen[i] = true
		stack = append(stack, c.Gates[i].Fanins...)
	}
	return seen
}

// ExtractCOI builds a new circuit containing only the sequential cone of
// influence of the given output gates (which become the outputs of the new
// circuit). Input/latch declaration order is preserved.
func (c *Circuit) ExtractCOI(roots []int) *Circuit {
	keep := c.ConeOfInfluence(roots)
	nc := New(c.Name + "_coi")
	remap := make(map[int]int)
	// Create gates in original index order so fanins exist before use;
	// DFFs need a second pass because their D may come later.
	var dffs []int
	for i, g := range c.Gates {
		if !keep[i] {
			continue
		}
		switch g.Type {
		case DFF:
			// Placeholder: create as DFF with temporary self-fanin fixed below.
			dffs = append(dffs, i)
			idx := len(nc.Gates)
			nc.Gates = append(nc.Gates, Gate{Name: g.Name, Type: DFF, Fanins: []int{0}})
			nc.byName[g.Name] = idx
			nc.Latches = append(nc.Latches, idx)
			remap[i] = idx
		default:
			fan := make([]int, len(g.Fanins))
			for k, f := range g.Fanins {
				fan[k] = remap[f]
			}
			remap[i] = nc.AddGate(g.Name, g.Type, fan...)
		}
	}
	for _, i := range dffs {
		d := c.Gates[i].Fanins[0]
		nc.Gates[remap[i]].Fanins[0] = remap[d]
	}
	for _, r := range roots {
		nc.MarkOutput(remap[r])
	}
	return nc
}

// Stats summarizes the netlist for reporting.
type NetStats struct {
	Name      string
	Inputs    int
	Outputs   int
	Latches   int
	CombGates int
	Depth     int
}

// Stats computes summary statistics; depth is -1 on cyclic netlists.
func (c *Circuit) Stats() NetStats {
	d, err := c.Depth()
	if err != nil {
		d = -1
	}
	return NetStats{
		Name:      c.Name,
		Inputs:    len(c.Inputs),
		Outputs:   len(c.Outputs),
		Latches:   len(c.Latches),
		CombGates: c.NumCombGates(),
		Depth:     d,
	}
}

func (s NetStats) String() string {
	return fmt.Sprintf("%s: PI=%d PO=%d FF=%d gates=%d depth=%d",
		s.Name, s.Inputs, s.Outputs, s.Latches, s.CombGates, s.Depth)
}

// SortedSignalNames returns all signal names sorted, for deterministic
// output in tools.
func (c *Circuit) SortedSignalNames() []string {
	names := make([]string, 0, len(c.Gates))
	for _, g := range c.Gates {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}
