package circuit

import (
	"strings"
	"testing"
)

// FuzzParseBench checks the BENCH parser never panics and that anything
// it accepts survives a write/re-parse round trip.
func FuzzParseBench(f *testing.F) {
	seeds := []string{
		"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n",
		"# comment\nINPUT(x)\nq = DFF(d)\nd = AND(x, q)\nOUTPUT(q)\n",
		"INPUT(a)\nINPUT(b)\nz = XOR(a, b)\nOUTPUT(z)\n",
		"g = CONST1()\nOUTPUT(g)\n",
		"INPUT(a)\nf = NAND(a, a, a)\nOUTPUT(f)\n",
		"INPUT(a)\nf = AND(a\n", // malformed
		"OUTPUT(zz)\n",          // undefined
		"f == AND(a)\n",         // junk
		strings.Repeat("INPUT(a)\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseBenchString("fuzz", src)
		if err != nil {
			return
		}
		// Accepted circuits must be re-parsable with the same interface.
		text := BenchString(c)
		c2, err := ParseBenchString("fuzz2", text)
		if err != nil {
			t.Fatalf("round trip rejected: %v\noriginal:\n%s\nwritten:\n%s", err, src, text)
		}
		if len(c2.Inputs) != len(c.Inputs) || len(c2.Latches) != len(c.Latches) ||
			len(c2.Outputs) != len(c.Outputs) {
			t.Fatalf("interface changed in round trip")
		}
	})
}
