package circuit

import (
	"fmt"

	"allsatpre/internal/lit"
)

// Simulator evaluates a circuit. It caches the topological order, so one
// Simulator amortizes across many vectors.
type Simulator struct {
	c     *Circuit
	order []int
}

// NewSimulator prepares a simulator; it fails on combinational cycles.
func NewSimulator(c *Circuit) (*Simulator, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Simulator{c: c, order: order}, nil
}

// Step evaluates one clock cycle: given the current latch state (indexed
// by Latches order) and primary input vector (indexed by Inputs order), it
// returns the primary output vector and the next latch state.
func (s *Simulator) Step(state, inputs []bool) (outputs, nextState []bool) {
	c := s.c
	if len(state) != len(c.Latches) || len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("circuit: Step dimensions: state %d/%d inputs %d/%d",
			len(state), len(c.Latches), len(inputs), len(c.Inputs)))
	}
	val := make([]bool, len(c.Gates))
	for k, i := range c.Latches {
		val[i] = state[k]
	}
	for k, i := range c.Inputs {
		val[i] = inputs[k]
	}
	var inBuf []bool
	for _, i := range s.order {
		g := &c.Gates[i]
		switch g.Type {
		case Input, DFF:
			continue // already seeded
		default:
			inBuf = inBuf[:0]
			for _, f := range g.Fanins {
				inBuf = append(inBuf, val[f])
			}
			val[i] = EvalGate(g.Type, inBuf)
		}
	}
	outputs = make([]bool, len(c.Outputs))
	for k, i := range c.Outputs {
		outputs[k] = val[i]
	}
	nextState = make([]bool, len(c.Latches))
	for k, i := range c.Latches {
		nextState[k] = val[c.Gates[i].Fanins[0]]
	}
	return outputs, nextState
}

// StepTern is the ternary analogue of Step: Unknown inputs/state bits
// propagate as X through the logic with controlling-value short circuits.
func (s *Simulator) StepTern(state, inputs []lit.Tern) (outputs, nextState []lit.Tern) {
	c := s.c
	if len(state) != len(c.Latches) || len(inputs) != len(c.Inputs) {
		panic("circuit: StepTern dimension mismatch")
	}
	val := make([]lit.Tern, len(c.Gates))
	for k, i := range c.Latches {
		val[i] = state[k]
	}
	for k, i := range c.Inputs {
		val[i] = inputs[k]
	}
	var inBuf []lit.Tern
	for _, i := range s.order {
		g := &c.Gates[i]
		switch g.Type {
		case Input, DFF:
			continue
		default:
			inBuf = inBuf[:0]
			for _, f := range g.Fanins {
				inBuf = append(inBuf, val[f])
			}
			val[i] = EvalGateTern(g.Type, inBuf)
		}
	}
	outputs = make([]lit.Tern, len(c.Outputs))
	for k, i := range c.Outputs {
		outputs[k] = val[i]
	}
	nextState = make([]lit.Tern, len(c.Latches))
	for k, i := range c.Latches {
		nextState[k] = val[c.Gates[i].Fanins[0]]
	}
	return outputs, nextState
}

// Step64 simulates 64 independent vectors in parallel: each uint64 carries
// one bit per vector.
func (s *Simulator) Step64(state, inputs []uint64) (outputs, nextState []uint64) {
	c := s.c
	if len(state) != len(c.Latches) || len(inputs) != len(c.Inputs) {
		panic("circuit: Step64 dimension mismatch")
	}
	val := make([]uint64, len(c.Gates))
	for k, i := range c.Latches {
		val[i] = state[k]
	}
	for k, i := range c.Inputs {
		val[i] = inputs[k]
	}
	for _, i := range s.order {
		g := &c.Gates[i]
		switch g.Type {
		case Input, DFF:
			continue
		case Const0:
			val[i] = 0
		case Const1:
			val[i] = ^uint64(0)
		case Buf:
			val[i] = val[g.Fanins[0]]
		case Not:
			val[i] = ^val[g.Fanins[0]]
		case And, Nand:
			r := ^uint64(0)
			for _, f := range g.Fanins {
				r &= val[f]
			}
			if g.Type == Nand {
				r = ^r
			}
			val[i] = r
		case Or, Nor:
			r := uint64(0)
			for _, f := range g.Fanins {
				r |= val[f]
			}
			if g.Type == Nor {
				r = ^r
			}
			val[i] = r
		case Xor:
			val[i] = val[g.Fanins[0]] ^ val[g.Fanins[1]]
		case Xnor:
			val[i] = ^(val[g.Fanins[0]] ^ val[g.Fanins[1]])
		}
	}
	outputs = make([]uint64, len(c.Outputs))
	for k, i := range c.Outputs {
		outputs[k] = val[i]
	}
	nextState = make([]uint64, len(c.Latches))
	for k, i := range c.Latches {
		nextState[k] = val[c.Gates[i].Fanins[0]]
	}
	return outputs, nextState
}

// Run simulates a sequence of input vectors from an initial state and
// returns the trace of output vectors and the final state.
func (s *Simulator) Run(initState []bool, inputSeq [][]bool) (outTrace [][]bool, finalState []bool) {
	state := append([]bool(nil), initState...)
	for _, in := range inputSeq {
		var out []bool
		out, state = s.Step(state, in)
		outTrace = append(outTrace, out)
	}
	return outTrace, state
}
