package experiments

import (
	"sync"
	"testing"

	"allsatpre/internal/gen"
	"allsatpre/internal/preimage"
	"allsatpre/internal/stats"
)

// Experiments are costly; run each once and share across the tests.
var (
	t1Once sync.Once
	t1Tb   *stats.Table
	t1Rows []Row
)

func table1(t *testing.T) (*stats.Table, []Row) {
	t.Helper()
	t1Once.Do(func() { t1Tb, t1Rows = Table1() })
	return t1Tb, t1Rows
}

// groupByCircuit collects rows per circuit for cross-engine checks.
func groupByCircuit(rows []Row) map[string][]Row {
	out := map[string][]Row{}
	for _, r := range rows {
		out[r.Circuit] = append(out[r.Circuit], r)
	}
	return out
}

func TestTable1EnginesAgree(t *testing.T) {
	tb, rows := table1(t)
	if tb.NumRows() != len(rows) || len(rows) == 0 {
		t.Fatal("row bookkeeping")
	}
	for name, rs := range groupByCircuit(rows) {
		// Aborted (capped) rows are under-approximations; compare the
		// exact rows among themselves and check capped rows are ≤ exact.
		var exact *Row
		for i := range rs {
			if !rs[i].Aborted {
				exact = &rs[i]
				break
			}
		}
		if exact == nil {
			t.Fatalf("%s: every engine aborted", name)
		}
		for _, r := range rs {
			if r.Aborted {
				if r.Count.Cmp(exact.Count) > 0 {
					t.Fatalf("%s: aborted row exceeds exact count", name)
				}
				continue
			}
			if r.Count.Cmp(exact.Count) != 0 {
				t.Fatalf("%s: engines disagree on state count: %v (%v) vs %v (%v)",
					name, r.Count, r.Engine, exact.Count, exact.Engine)
			}
		}
	}
}

func TestTable1LiftingUsesFewerOrEqualCubes(t *testing.T) {
	_, rows := table1(t)
	byCir := groupByCircuit(rows)
	for name, rs := range byCir {
		var blocking, lifting *Row
		for i := range rs {
			switch rs[i].Engine {
			case preimage.EngineBlocking:
				blocking = &rs[i]
			case preimage.EngineLifting:
				lifting = &rs[i]
			}
		}
		if blocking == nil || lifting == nil {
			t.Fatalf("%s: missing engines", name)
		}
		if lifting.Cubes > blocking.Cubes {
			t.Errorf("%s: lifting used more cubes (%d) than blocking (%d)",
				name, lifting.Cubes, blocking.Cubes)
		}
	}
}

func TestTable2EnginesAgree(t *testing.T) {
	_, rows := Table2()
	for name, rs := range groupByCircuit(rows) {
		for _, r := range rs[1:] {
			if r.Count.Cmp(rs[0].Count) != 0 {
				t.Fatalf("%s: SAT and BDD disagree: %v vs %v", name, r.Count, rs[0].Count)
			}
		}
	}
}

func TestTable3EnginesAgree(t *testing.T) {
	_, rows := Table3(4)
	for name, rs := range groupByCircuit(rows) {
		for _, r := range rs[1:] {
			if r.Count.Cmp(rs[0].Count) != 0 {
				t.Fatalf("%s: reach totals disagree: %v (%v) vs %v (%v)",
					name, r.Count, r.Engine, rs[0].Count, rs[0].Engine)
			}
			if r.Steps != rs[0].Steps {
				t.Fatalf("%s: step counts disagree", name)
			}
		}
	}
}

func TestFig1Shapes(t *testing.T) {
	_, rows := Fig1([]int{2, 4, 6}, 10)
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	// Per sweep point, both engines report the same solution count
	// (neither should hit the cap at these sizes), and the solution
	// count grows with the number of free bits.
	var prev int64 = -1
	for i := 0; i < len(rows); i += 2 {
		if rows[i].Aborted || rows[i+1].Aborted {
			t.Fatalf("free=%v: unexpected abort", rows[i].Extra)
		}
		if rows[i].Count.Cmp(rows[i+1].Count) != 0 {
			t.Fatalf("free=%v: counts differ", rows[i].Extra)
		}
		if rows[i].Count.Int64() <= prev {
			t.Fatalf("solution count should grow with free bits")
		}
		prev = rows[i].Count.Int64()
	}
	// Blocking enumerates one cube per (s, x) model; success-driven must
	// use far fewer cubes at the largest point.
	last := rows[len(rows)-2:]
	if last[1].Cubes*4 > last[0].Cubes {
		t.Errorf("success-driven cubes (%d) should be ≪ blocking cubes (%d)",
			last[1].Cubes, last[0].Cubes)
	}
}

func TestFig2MemoMatchesAndHits(t *testing.T) {
	_, rows := Fig2([]int{40, 80})
	for i := 0; i < len(rows); i += 2 {
		off, on := rows[i], rows[i+1]
		if off.Count.Cmp(on.Count) != 0 {
			t.Fatalf("memo ablation changed the answer at size %v", off.Extra)
		}
		if off.CacheHit != 0 {
			t.Fatal("memo-off run should have no cache hits")
		}
		if on.Decisions > off.Decisions {
			t.Errorf("memo-on should not need more decisions (%d vs %d)", on.Decisions, off.Decisions)
		}
	}
}

func TestFig3LiftingFreesVariables(t *testing.T) {
	_, rows := Fig3()
	totalFreedLift, totalFreedBlock := 0.0, 0.0
	for _, r := range rows {
		switch r.Engine {
		case preimage.EngineLifting:
			totalFreedLift += r.AvgFree
		case preimage.EngineBlocking:
			totalFreedBlock += r.AvgFree
		}
	}
	if totalFreedLift <= totalFreedBlock {
		t.Errorf("lifting should free more variables: %.2f vs %.2f",
			totalFreedLift, totalFreedBlock)
	}
}

func TestTable4OrdersAgree(t *testing.T) {
	_, rows := Table4()
	for name, rs := range groupByCircuit(rows) {
		for _, r := range rs[1:] {
			if r.Count.Cmp(rs[0].Count) != 0 {
				t.Fatalf("%s: decision orders disagree on state count", name)
			}
		}
	}
}

func TestTable5OrdersAgree(t *testing.T) {
	_, rows := Table5()
	for name, rs := range groupByCircuit(rows) {
		if len(rs) != 2 {
			t.Fatalf("%s: want 2 rows", name)
		}
		if rs[0].Count.Cmp(rs[1].Count) != 0 {
			t.Fatalf("%s: orderings disagree on state count", name)
		}
	}
}

func TestFig4EnginesAgree(t *testing.T) {
	_, rows := Fig4([]float64{0.05, 0.35})
	for i := 0; i < len(rows); i += 2 {
		if rows[i].Count.Cmp(rows[i+1].Count) != 0 {
			t.Fatalf("xf=%v: engines disagree", rows[i].Extra)
		}
	}
}

func TestTable6EliminationAgrees(t *testing.T) {
	_, rows := Table6()
	// Rows come in off/on pairs; both must agree on the state count.
	for i := 0; i < len(rows); i += 2 {
		if rows[i].Count.Cmp(rows[i+1].Count) != 0 {
			t.Fatalf("%s/%v: elimination changed the answer", rows[i].Circuit, rows[i].Engine)
		}
	}
}

func TestTargetForDeterministicAndFixed(t *testing.T) {
	c := gen.Counter(6, true, false)
	c1 := targetFor(c)
	c2 := targetFor(gen.Counter(6, true, false))
	if c1.Cubes()[0].String() != c2.Cubes()[0].String() {
		t.Fatal("targetFor not deterministic")
	}
	if c1.Cubes()[0].FixedVars() == 0 {
		t.Fatal("targetFor should fix at least one position")
	}
}
