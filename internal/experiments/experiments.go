// Package experiments regenerates every table and figure of the
// evaluation (see DESIGN.md §4 for the per-experiment index). Each
// function runs one experiment and returns both the rendered table and
// the raw measurements, so cmd/experiments can print them and the root
// benchmarks can assert on their shapes.
//
// The original paper's ISCAS-89 workloads are replaced by the seeded
// synthetic suite in internal/gen (see the substitution note in
// DESIGN.md); timings are wall-clock on the host, so the comparisons to
// report are ratios and orderings, not absolute numbers.
package experiments

import (
	"fmt"
	"math/big"
	"time"

	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/preimage"
	"allsatpre/internal/simplify"
	"allsatpre/internal/stats"
	"allsatpre/internal/trans"
)

// Row is one measurement of one engine on one workload.
type Row struct {
	Circuit   string
	Engine    preimage.Engine
	Time      time.Duration
	Count     *big.Int // preimage states (or reach total)
	Cubes     uint64
	Solutions uint64
	Decisions uint64
	Conflicts uint64
	CacheHit  float64 // success-driven cache hit rate
	BDDNodes  int
	AvgFree   float64 // average free vars per cube (lifting/Fig3)
	AvgBlock  float64 // average blocking clause length
	Steps     int     // reach steps (Table 3)
	Extra     float64 // experiment-specific x-axis value (Fig 1/2 sweeps)
	// PeakClauses is the engine's clause-database memory proxy: blocking
	// clauses added plus the learnt-clause high-water mark (Table 7).
	PeakClauses uint64
	// PeakLearntKB is the learnt clauses' arena high-water mark in KiB.
	// Counts stopped being comparable once the learnt DB became tiered
	// (core clauses are permanent, locals churn), so Table 7 reports the
	// byte watermark next to the count.
	PeakLearntKB float64
	// Blocking is the number of blocking clauses alone — zero for the
	// disjoint and success-driven engines by construction.
	Blocking uint64
	// Aborted marks a truncated run (cube cap or RunBudget); Count is
	// then a lower bound, rendered with a TRUNCATED marker, never as a
	// complete measurement. Reason says which limit tripped.
	Aborted bool
	Reason  budget.Reason
	// SimplifyVars is the number of auxiliary variables the projection-safe
	// preprocessor eliminated (zero when the pass was off or idle).
	SimplifyVars int
}

// RunBudget, when non-zero, bounds every experiment run — set it from
// cmd/experiments' -timeout/-max-* flags so a wedged workload truncates
// loudly instead of hanging the harness.
var RunBudget budget.Budget

// RunWorkers, when > 1, runs every experiment's preimage computation
// with that many parallel enumeration workers (-workers on the CLI).
// The tables are unchanged by construction — parallel covers denote the
// same solution sets — only wall-clock moves.
var RunWorkers int

// RunIncremental, when set, makes the iterated experiments (Table 3
// reachability) reuse one solver session and BDD manager across steps
// (-incremental on the CLI). The tables are unchanged by construction —
// the incremental path produces bit-identical frontiers — only
// wall-clock moves.
var RunIncremental bool

// RunStats, when non-nil, collects per-workload counters: each run gets
// a "circuit/engine" phase beneath it.
var RunStats *stats.Registry

// RunSimplify sets the projection-safe preprocessing mode for every
// experiment run that does not pin its own (-simplify on the CLI). The
// counted covers are unchanged by construction — the pass preserves the
// projection onto the frozen state variables exactly — only wall-clock
// and the decision/conflict/cube counters move.
//
// Unlike the library and the other CLIs, the harness resolves Auto to
// OFF: the tables reproduce the paper's engines, and the DATE 2004
// solver has no preprocessor, so the historical comparisons (blocking
// caps, clause-growth peaks, cube counts) stay measured on the raw
// Tseitin CNF. The controlled preprocessing comparison lives in Table 6
// and BENCH_5.json; pass -simplify=on to re-measure any table with the
// pass applied.
var RunSimplify simplify.Mode

// resolveSimplify maps the harness default (Auto) to Off — see
// RunSimplify. An explicit -simplify=on/off wins.
func resolveSimplify() simplify.Mode {
	if RunSimplify == simplify.Auto {
		return simplify.Off
	}
	return RunSimplify
}

// truncMark annotates a count rendered into a table cell when the row
// was truncated: the measurement is a lower bound, not the answer.
func truncMark(count string, row Row) string {
	if !row.Aborted {
		return count
	}
	return ">" + count + " TRUNCATED(" + row.Reason.String() + ")"
}

// BlockingCubeCap bounds the blocking/lifting baselines in the harness.
// On the largest workloads classical blocking needs minutes (its blowup is
// the paper's motivation); capped rows are reported as aborted, the way
// papers mark timeouts, so the harness stays interactive.
const BlockingCubeCap = 5000

// targetFor builds the standard experiment target for a circuit: the cube
// around a state that is provably producible in one step (obtained by
// simulating one transition from a deterministic seed state), with every
// third position freed. This guarantees a non-empty preimage on every
// workload — a random pattern would leave the random-logic circuits with
// empty, uninformative rows — while still being a proper subset of the
// state space.
func targetFor(c *circuit.Circuit) *cube.Cover {
	n := len(c.Latches)
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		panic(err)
	}
	st := make([]bool, n)
	in := make([]bool, len(c.Inputs))
	h := uint32(2166136261)
	for _, ch := range c.Name {
		h = (h ^ uint32(ch)) * 16777619
	}
	for i := range st {
		h = h*1664525 + 1013904223
		st[i] = h>>16&1 == 1
	}
	for i := range in {
		h = h*1664525 + 1013904223
		in[i] = h>>16&1 == 1
	}
	_, next := sim.Step(st, in)
	pat := make([]byte, n)
	fixed := 0
	for i := range pat {
		if i%5 == 4 {
			pat[i] = 'X'
			continue
		}
		if next[i] {
			pat[i] = '1'
		} else {
			pat[i] = '0'
		}
		fixed++
	}
	if fixed == 0 {
		if next[0] {
			pat[0] = '1'
		} else {
			pat[0] = '0'
		}
	}
	return trans.TargetFromPatterns(n, string(pat))
}

func run(c *circuit.Circuit, target *cube.Cover, opts preimage.Options) Row {
	switch opts.Engine {
	case preimage.EngineBlocking, preimage.EngineLifting:
		opts.AllSAT.MaxCubes = BlockingCubeCap
	}
	if opts.Budget.IsZero() {
		opts.Budget = RunBudget
	}
	if opts.Parallel == 0 && RunWorkers > 1 {
		opts.Parallel = RunWorkers
	}
	if opts.Stats == nil && RunStats != nil {
		opts.Stats = RunStats.Phase(c.Name + "/" + opts.Engine.String())
	}
	if opts.Simplify == simplify.Auto {
		opts.Simplify = resolveSimplify()
	}
	t := stats.StartTimer()
	r, err := preimage.Compute(c, target, opts)
	if err != nil {
		panic(err) // experiment circuits are well-formed by construction
	}
	row := Row{
		Circuit:   c.Name,
		Engine:    opts.Engine,
		Time:      t.Elapsed(),
		Count:     r.Count,
		Cubes:     r.Stats.Cubes,
		Solutions: r.Stats.Solutions,
		Decisions: r.Stats.Decisions,
		Conflicts: r.Stats.Conflicts,
		BDDNodes:  r.BDDNodes,
		Aborted:   r.Aborted,
		Reason:    r.AbortReason,

		PeakClauses:  r.Stats.BlockingClauses + r.Stats.PeakLearnts,
		PeakLearntKB: float64(r.Stats.PeakLearntBytes) / 1024,
		Blocking:     r.Stats.BlockingClauses,

		SimplifyVars: r.Stats.Simplify.VarsEliminated,
	}
	if opts.Engine == preimage.EngineBDD {
		row.Cubes = uint64(r.States.Len())
	}
	if r.Stats.CacheLookups > 0 {
		row.CacheHit = float64(r.Stats.CacheHits) / float64(r.Stats.CacheLookups)
	}
	if r.Stats.BlockingClauses > 0 {
		row.AvgBlock = float64(r.Stats.BlockingLits) / float64(r.Stats.BlockingClauses)
	}
	if r.Stats.Cubes > 0 {
		row.AvgFree = float64(r.Stats.LiftedFree) / float64(r.Stats.Cubes)
	}
	return row
}

// Table1 compares the four SAT enumeration engines on single-step
// preimage over the benchmark suite: time, decisions, conflicts, cubes.
func Table1() (*stats.Table, []Row) {
	tb := stats.NewTable("Table 1 — single-step preimage: SAT all-solutions engines",
		"circuit", "engine", "states", "cubes", "decisions", "conflicts", "time")
	var rows []Row
	for _, nc := range gen.Suite() {
		target := targetFor(nc.Circuit)
		for _, eng := range []preimage.Engine{
			preimage.EngineBlocking, preimage.EngineLifting, preimage.EngineDisjoint,
			preimage.EngineSuccessDriven,
		} {
			row := run(nc.Circuit, target, preimage.Options{Engine: eng})
			rows = append(rows, row)
			tb.AddRow(row.Circuit, row.Engine.String(), truncMark(row.Count.String(), row),
				row.Cubes, row.Decisions, row.Conflicts, row.Time)
		}
	}
	return tb, rows
}

// Table2 compares the success-driven SAT engine against the BDD
// relational-product engine: time and memory proxy (engine BDD nodes).
func Table2() (*stats.Table, []Row) {
	tb := stats.NewTable("Table 2 — SAT (success-driven) vs BDD preimage engine",
		"circuit", "engine", "states", "bdd-nodes", "time")
	var rows []Row
	suite := append(gen.Suite(),
		gen.NamedCircuit{Name: "mult6", Circuit: gen.MultCore(6)},
		gen.NamedCircuit{Name: "mult8", Circuit: gen.MultCore(8)},
	)
	for _, nc := range suite {
		target := targetFor(nc.Circuit)
		for _, eng := range []preimage.Engine{preimage.EngineSuccessDriven, preimage.EngineBDD} {
			row := run(nc.Circuit, target, preimage.Options{Engine: eng})
			rows = append(rows, row)
			tb.AddRow(row.Circuit, row.Engine.String(), row.Count.String(),
				row.BDDNodes, row.Time)
		}
	}
	return tb, rows
}

// Table3 measures multi-step backward reachability to fixpoint (capped at
// maxSteps) for the success-driven, blocking, and BDD engines.
func Table3(maxSteps int) (*stats.Table, []Row) {
	tb := stats.NewTable("Table 3 — backward reachability (fixpoint or step cap)",
		"circuit", "engine", "steps", "states", "time")
	var rows []Row
	suite := []gen.NamedCircuit{
		{Name: "counter8", Circuit: gen.Counter(8, true, false)},
		{Name: "johnson8", Circuit: gen.Johnson(8)},
		{Name: "traffic", Circuit: gen.TrafficLight()},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
	}
	for _, nc := range suite {
		target := targetFor(nc.Circuit)
		for _, eng := range []preimage.Engine{
			preimage.EngineSuccessDriven, preimage.EngineBlocking, preimage.EngineBDD,
		} {
			opts := preimage.Options{Engine: eng, Budget: RunBudget, Incremental: RunIncremental,
				Simplify: resolveSimplify()}
			if RunWorkers > 1 {
				opts.Parallel = RunWorkers
			}
			if RunStats != nil {
				opts.Stats = RunStats.Phase(nc.Circuit.Name + "/" + eng.String())
			}
			t := stats.StartTimer()
			r, err := preimage.Reach(nc.Circuit, target, maxSteps, opts)
			if err != nil {
				panic(err)
			}
			row := Row{
				Circuit: nc.Circuit.Name,
				Engine:  eng,
				Time:    t.Elapsed(),
				Count:   r.AllCount,
				Steps:   r.Steps,
				Aborted: r.Aborted,
				Reason:  r.AbortReason,
			}
			rows = append(rows, row)
			tb.AddRow(row.Circuit, row.Engine.String(), row.Steps,
				truncMark(row.Count.String(), row), row.Time)
		}
	}
	return tb, rows
}

// Fig1 sweeps the size of the target set on a fixed-width counter and
// reports runtime versus the number of enumerated solutions: the target
// cube frees k low bits, so the preimage (and with it the number of
// models the blocking engine must enumerate one by one) doubles with
// each step, while the success-driven solver represents it as a few BDD
// nodes. This is the separation plot at the heart of the paper.
func Fig1(freeBits []int, width int) (*stats.Table, []Row) {
	tb := stats.NewTable("Figure 1 — runtime vs number of solutions (target-size sweep)",
		"free-bits", "engine", "solutions", "cubes", "time")
	var rows []Row
	c := gen.Counter(width, true, false)
	for _, k := range freeBits {
		if k >= width {
			panic("experiments: Fig1 free bits must be below the counter width")
		}
		pat := make([]byte, width)
		for i := range pat {
			if i < k {
				pat[i] = 'X'
			} else if i%2 == 0 {
				pat[i] = '1'
			} else {
				pat[i] = '0'
			}
		}
		target := trans.TargetFromPatterns(width, string(pat))
		for _, eng := range []preimage.Engine{preimage.EngineBlocking, preimage.EngineSuccessDriven} {
			row := run(c, target, preimage.Options{Engine: eng})
			row.Extra = float64(k)
			rows = append(rows, row)
			tb.AddRow(k, eng.String(), truncMark(row.Count.String(), row), row.Cubes, row.Time)
		}
	}
	return tb, rows
}

// Fig2 is the success-driven learning ablation: cache hit rate and
// runtime with memoization on versus off, sweeping circuit size.
func Fig2(sizes []int) (*stats.Table, []Row) {
	tb := stats.NewTable("Figure 2 — success-driven learning ablation (memo on/off)",
		"gates", "memo", "hit-rate", "decisions", "time")
	var rows []Row
	for _, g := range sizes {
		c := gen.SLike(gen.SLikeParams{Seed: 5, Inputs: 8, Latches: 8, Gates: g})
		target := targetFor(c)
		for _, memo := range []bool{false, true} {
			opts := preimage.Options{Engine: preimage.EngineSuccessDriven}
			opts.Core.EnableMemo = memo
			opts.Core.EnableLearning = true
			row := run(c, target, opts)
			row.Extra = float64(g)
			rows = append(rows, row)
			memoStr := "off"
			if memo {
				memoStr = "on"
			}
			tb.AddRow(g, memoStr, row.CacheHit, row.Decisions, row.Time)
		}
	}
	return tb, rows
}

// Fig4 sweeps the XOR fraction of the random family and reports, for the
// success-driven engine, the memo hit rate and runtime, and for the BDD
// engine the node count: XOR-rich logic erodes both the BDD's compactness
// and (more slowly) the residual-hash hit rate, locating where each
// engine's structure-exploitation breaks down.
func Fig4(fractions []float64) (*stats.Table, []Row) {
	tb := stats.NewTable("Figure 4 — XOR-richness sweep (memo hit rate / BDD nodes)",
		"xor-frac", "sd-hit-rate", "sd-time", "bdd-nodes", "bdd-time")
	var rows []Row
	for _, xf := range fractions {
		c := gen.SLike(gen.SLikeParams{Seed: 9, Inputs: 8, Latches: 8, Gates: 150, XorFraction: xf})
		target := targetFor(c)
		sd := run(c, target, preimage.Options{Engine: preimage.EngineSuccessDriven})
		bd := run(c, target, preimage.Options{Engine: preimage.EngineBDD})
		sd.Extra, bd.Extra = xf, xf
		rows = append(rows, sd, bd)
		tb.AddRow(xf, sd.CacheHit, sd.Time, bd.BDDNodes, bd.Time)
	}
	return tb, rows
}

// Fig3 measures cube enlargement: average free variables per solution
// cube and average blocking-clause length, blocking vs lifting.
func Fig3() (*stats.Table, []Row) {
	tb := stats.NewTable("Figure 3 — cube enlargement (blocking vs lifting)",
		"circuit", "engine", "cubes", "avg-free", "avg-blocking-len")
	var rows []Row
	for _, nc := range gen.Suite() {
		target := targetFor(nc.Circuit)
		for _, eng := range []preimage.Engine{preimage.EngineBlocking, preimage.EngineLifting} {
			row := run(nc.Circuit, target, preimage.Options{Engine: eng})
			rows = append(rows, row)
			tb.AddRow(row.Circuit, row.Engine.String(), row.Cubes, row.AvgFree, row.AvgBlock)
		}
	}
	return tb, rows
}

// Table5 is the BDD-engine variable-ordering ablation: interleaved
// (s_k, s'_k) pairs versus all-s-then-all-s' (segregated). The node
// counts show why interleaving is the standard choice for transition
// relations.
func Table5() (*stats.Table, []Row) {
	tb := stats.NewTable("Table 5 — BDD variable-order ablation (interleaved vs segregated)",
		"circuit", "order", "states", "bdd-nodes", "time")
	var rows []Row
	suite := []gen.NamedCircuit{
		{Name: "counter12", Circuit: gen.Counter(12, true, false)},
		{Name: "gray6", Circuit: gen.GrayCounter(6)},
		{Name: "slike2", Circuit: gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})},
		{Name: "mult6", Circuit: gen.MultCore(6)},
	}
	for _, nc := range suite {
		target := targetFor(nc.Circuit)
		for _, seg := range []bool{false, true} {
			opts := preimage.Options{Engine: preimage.EngineBDD, BDDSegregatedOrder: seg}
			row := run(nc.Circuit, target, opts)
			rows = append(rows, row)
			name := "interleaved"
			if seg {
				name = "segregated"
			}
			tb.AddRow(nc.Circuit.Name, name, row.Count.String(), row.BDDNodes, row.Time)
		}
	}
	return tb, rows
}

// Table6 is the CNF-reduction ablation, three-way: no reduction, exact
// Davis–Putnam elimination of every auxiliary variable (EliminateAux),
// and the bounded projection-safe simplifier (internal/simplify), for
// the success-driven and lifting engines. The states column is identical
// across the three rows of each pair by construction — all reductions
// preserve the projection — while decisions, eliminated variables, and
// time show what each reduction buys.
func Table6() (*stats.Table, []Row) {
	tb := stats.NewTable("Table 6 — CNF-reduction ablation (none / eliminate-aux / simplify)",
		"circuit", "engine", "reduction", "states", "decisions", "vars-elim", "time")
	var rows []Row
	suite := []gen.NamedCircuit{
		{Name: "counter12", Circuit: gen.Counter(12, true, false)},
		{Name: "gray6", Circuit: gen.GrayCounter(6)},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
		{Name: "slike2", Circuit: gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})},
	}
	reductions := []struct {
		name string
		opts preimage.Options
	}{
		{"none", preimage.Options{Simplify: simplify.Off}},
		{"elim-aux", preimage.Options{EliminateAux: true, Simplify: simplify.Off}},
		{"simplify", preimage.Options{Simplify: simplify.On}},
	}
	for _, nc := range suite {
		target := targetFor(nc.Circuit)
		for _, eng := range []preimage.Engine{preimage.EngineSuccessDriven, preimage.EngineLifting} {
			for _, red := range reductions {
				opts := red.opts
				opts.Engine = eng
				row := run(nc.Circuit, target, opts)
				rows = append(rows, row)
				tb.AddRow(nc.Circuit.Name, eng.String(), red.name, row.Count.String(),
					row.Decisions, row.SimplifyVars, row.Time)
			}
		}
	}
	return tb, rows
}

// Table7 is the clause-database growth shootout: for each SAT engine,
// peak added clauses (blocking clauses plus the learnt-clause high-water
// mark) and the learnt arena's byte watermark alongside time.
// Blocking/lifting grow one clause per cube — the blowup the disjoint
// engine exists to avoid — so the columns are the memory story behind
// the Table 1 timings: the disjoint engine's blocking column is
// structurally zero and its peak is conflict-driven only. The KiB column
// is the tier-proof measure: learnt counts stopped being comparable
// across engines once the DB became tiered.
func Table7() (*stats.Table, []Row) {
	tb := stats.NewTable("Table 7 — clause-database growth: peak added clauses per engine",
		"circuit", "engine", "states", "cubes", "peak-clauses", "learnt-kb", "blocking", "time")
	var rows []Row
	for _, nc := range gen.Suite() {
		target := targetFor(nc.Circuit)
		for _, eng := range []preimage.Engine{
			preimage.EngineBlocking, preimage.EngineLifting, preimage.EngineDisjoint,
			preimage.EngineSuccessDriven,
		} {
			row := run(nc.Circuit, target, preimage.Options{Engine: eng})
			rows = append(rows, row)
			tb.AddRow(row.Circuit, row.Engine.String(), truncMark(row.Count.String(), row),
				row.Cubes, row.PeakClauses, fmt.Sprintf("%.1f", row.PeakLearntKB),
				row.Blocking, row.Time)
		}
	}
	return tb, rows
}

// Table4 is the decision-order ablation for the success-driven solver:
// state-first (default) vs input-first vs interleaved.
func Table4() (*stats.Table, []Row) {
	tb := stats.NewTable("Table 4 — decision-order ablation (success-driven)",
		"circuit", "order", "states", "decisions", "time")
	var rows []Row
	suite := []gen.NamedCircuit{
		{Name: "counter10", Circuit: gen.Counter(10, true, false)},
		{Name: "gray6", Circuit: gen.GrayCounter(6)},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
		{Name: "slike2", Circuit: gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})},
	}
	orders := []struct {
		name string
		opts preimage.Options
	}{
		{"state-first", preimage.Options{Engine: preimage.EngineSuccessDriven}},
		{"input-first", preimage.Options{Engine: preimage.EngineSuccessDriven, InputFirstOrder: true}},
		{"interleave", preimage.Options{Engine: preimage.EngineSuccessDriven, Interleave: true}},
	}
	for _, nc := range suite {
		target := targetFor(nc.Circuit)
		for _, o := range orders {
			row := run(nc.Circuit, target, o.opts)
			rows = append(rows, row)
			tb.AddRow(nc.Circuit.Name, o.name, row.Count.String(), row.Decisions, row.Time)
		}
	}
	return tb, rows
}
