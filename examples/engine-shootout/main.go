// Engine shootout: the same preimage computed five ways, with search
// statistics side by side.
//
//	go run ./examples/engine-shootout
//
// Runs the success-driven solver, both blocking baselines, the
// blocking-clause-free disjoint enumerator, and the BDD relational
// product on a random reconvergent circuit and on a multiplier core,
// printing the per-engine work counters — a miniature version of
// the repository's Table 1/2 experiments.
package main

import (
	"fmt"
	"log"
	"os"

	"allsatpre"
	"allsatpre/internal/stats"
)

func main() {
	workloads := []struct {
		name    string
		circuit *allsatpre.Circuit
	}{
		{"slike (120 gates)", allsatpre.NewSLike(allsatpre.SLikeParams{
			Seed: 2, Inputs: 8, Latches: 8, Gates: 120})},
		{"mult6 (6x6 multiplier core)", allsatpre.NewMultCore(6)},
	}
	engines := []allsatpre.Engine{
		allsatpre.EngineSuccessDriven,
		allsatpre.EngineBlocking,
		allsatpre.EngineLifting,
		allsatpre.EngineDisjoint,
		allsatpre.EngineBDD,
	}
	for _, w := range workloads {
		fmt.Printf("workload: %s — %v\n", w.name, w.circuit.Stats())
		// Pick a target that is guaranteed non-empty: simulate one step
		// from an arbitrary state and build the cube around the reached
		// next state, freeing every third bit.
		st := make([]bool, len(w.circuit.Latches))
		in := make([]bool, len(w.circuit.Inputs))
		for i := range in {
			in[i] = i%2 == 0
		}
		_, next, err := allsatpre.SimulateStep(w.circuit, st, in)
		if err != nil {
			log.Fatal(err)
		}
		pat := make([]byte, len(next))
		for i, b := range next {
			switch {
			case i%3 == 2:
				pat[i] = 'X'
			case b:
				pat[i] = '1'
			default:
				pat[i] = '0'
			}
		}
		target := string(pat)
		fmt.Printf("target: {%s}\n", target)
		// Each engine runs twice: raw CNF versus the projection-safe
		// simplifier (state variables frozen, auxiliaries eliminated). The
		// states column is identical by construction; decisions and time
		// show what the preprocessing buys. The BDD engine never sees the
		// CNF, so its two rows only differ by noise.
		tb := stats.NewTable("", "engine", "simplify", "states", "cubes", "decisions", "conflicts", "peak-clauses", "learnt-kb", "memo-hits", "bdd-nodes", "time")
		for _, eng := range engines {
			for _, smode := range []allsatpre.SimplifyMode{allsatpre.SimplifyOff, allsatpre.SimplifyOn} {
				t := stats.StartTimer()
				r, err := allsatpre.Preimage(w.circuit,
					allsatpre.Options{Engine: eng, Simplify: smode}, target)
				if err != nil {
					log.Fatal(err)
				}
				tb.AddRow(eng.String(), smode.String(), r.Count.String(), r.States.Len(),
					r.Stats.Decisions, r.Stats.Conflicts,
					r.Stats.BlockingClauses+r.Stats.PeakLearnts,
					fmt.Sprintf("%.1f", float64(r.Stats.PeakLearntBytes)/1024),
					r.Stats.CacheHits,
					r.BDDNodes, t.Elapsed())
			}
		}
		tb.Render(os.Stdout)
		fmt.Println()
	}
}
