// Backward reachability: which states can ever reach a bad state?
//
//	go run ./examples/backward-reach
//
// The example treats "all phase bits of the traffic controller low" as a
// bad condition and computes, by iterated preimage, every state from
// which some input sequence drives the controller into it — the core loop
// of SAT-based unbounded model checking. It then does the same on a
// Johnson counter where the per-step frontiers have a clean closed form.
package main

import (
	"fmt"
	"log"

	"allsatpre"
)

func main() {
	// Part 1: traffic controller, bad = no phase bit set (illegal).
	c := allsatpre.NewTrafficLight()
	fmt.Println("circuit:", c.Stats())
	r, err := allsatpre.BackwardReach(c, allsatpre.Options{}, -1, "000XX")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states that can reach {phase=000}: %s of 32 (fixpoint=%v, %d steps)\n",
		r.AllCount, r.Fixpoint, r.Steps)
	for k, cnt := range r.FrontierCounts {
		fmt.Printf("  distance %d: %s new states\n", k, cnt)
	}

	// Part 2: Johnson counter — the backward frontier from a ring state
	// walks the 2n-state orbit one state per step.
	j := allsatpre.NewJohnson(6)
	rj, err := allsatpre.BackwardReach(j, allsatpre.Options{}, -1, "111111")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njohnson6: %s states reach {111111} in ≤%d steps (fixpoint=%v)\n",
		rj.AllCount, rj.Steps, rj.Fixpoint)

	// Engines agree on the fixpoint — run the BDD baseline as a check.
	rb, err := allsatpre.BackwardReach(j, allsatpre.Options{Engine: allsatpre.EngineBDD}, -1, "111111")
	if err != nil {
		log.Fatal(err)
	}
	if rb.AllCount.Cmp(rj.AllCount) != 0 {
		log.Fatalf("engines disagree: %v vs %v", rb.AllCount, rj.AllCount)
	}
	fmt.Println("BDD engine agrees:", rb.AllCount, "states")
}
