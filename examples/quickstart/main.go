// Quickstart: load a circuit, compute one preimage, print the result.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
//
// It loads the embedded s27 benchmark, asks for the set of (present
// state, input) configurations that drive all three latches to 1 in one
// clock, and prints the preimage states as "01X" cubes over the latch
// variables G5, G6, G7.
package main

import (
	"fmt"
	"log"

	"allsatpre"
)

func main() {
	c, err := allsatpre.LoadBench("testdata/s27.bench")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", c.Stats())

	// The target set: every next state with latch G5 = 1 ("1XX" — one
	// character per latch, in declaration order G5, G6, G7).
	res, err := allsatpre.Preimage(c, allsatpre.Options{}, "1XX")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("preimage of {G5'=1}: %s states\n", res.Count)
	fmt.Println("cubes over (G5,G6,G7):")
	for _, cb := range res.States.Cubes() {
		fmt.Println("  ", cb)
	}

	// Some targets are unreachable in one step: {111} needs G10'=G11'=G13'=1
	// simultaneously, which s27's logic cannot produce — an empty preimage
	// is a meaningful model-checking answer, not an error.
	empty, err := allsatpre.Preimage(c, allsatpre.Options{}, "111")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preimage of {111}: %s states (the target is unreachable in one step)\n", empty.Count)

	// The same computation with every engine must agree — the baselines
	// are built in, so cross-checking is one line each.
	for _, eng := range []allsatpre.Engine{
		allsatpre.EngineBlocking, allsatpre.EngineLifting, allsatpre.EngineBDD,
	} {
		r, err := allsatpre.Preimage(c, allsatpre.Options{Engine: eng}, "1XX")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("engine %-14s → %s states\n", eng, r.Count)
	}
}
