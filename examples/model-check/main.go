// Unbounded safety model checking via iterated preimage.
//
//	go run ./examples/model-check
//
// The example asks two safety questions about generated machines:
//
//  1. Can an 8-bit counter starting at 0 ever reach the all-ones state?
//     (Yes — and the checker returns the 255-step input trace.)
//  2. Can a Johnson ring counter starting at 0000 ever reach the
//     non-code-word 0101? (No — the backward fixpoint is the proof.)
package main

import (
	"fmt"
	"log"

	"allsatpre"
)

func main() {
	// Question 1: counter reaches all-ones.
	c := allsatpre.NewCounter(8, true, false)
	init, err := allsatpre.Target(c, "00000000")
	if err != nil {
		log.Fatal(err)
	}
	bad, err := allsatpre.Target(c, "11111111")
	if err != nil {
		log.Fatal(err)
	}
	res, err := allsatpre.CheckReachable(c, init, bad, -1, allsatpre.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter8: reachable=%v distance=%d trace-steps=%d\n",
		res.Reachable, res.Steps, res.Trace.Steps())
	fmt.Printf("  first three inputs of the witness: %v %v %v\n",
		res.Trace.Inputs[0], res.Trace.Inputs[1], res.Trace.Inputs[2])

	// Question 2: Johnson counter cannot leave its code words.
	j := allsatpre.NewJohnson(4)
	jInit, _ := allsatpre.Target(j, "0000")
	jBad, _ := allsatpre.Target(j, "0101")
	jres, err := allsatpre.CheckReachable(j, jInit, jBad, -1, allsatpre.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("johnson4: reachable=%v complete=%v (fixpoint after %d iterations)\n",
		jres.Reachable, jres.Complete, jres.Steps)

	// Forward reachability gives the same verdict from the other side:
	// enumerate everything reachable from 0000 and check 0101 is absent.
	fr, err := allsatpre.ForwardReach(j, allsatpre.Options{}, -1, "0000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("johnson4 forward: %s reachable states (of 16), fixpoint=%v\n",
		fr.AllCount, fr.Fixpoint)
	if fr.All.Contains([]bool{false, true, false, true}) {
		log.Fatal("0101 must not be forward-reachable")
	}
	fmt.Println("0101 not among them — forward and backward analyses agree")
}
