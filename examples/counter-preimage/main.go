// Counter preimage walkthrough: the closed-form example from DESIGN.md.
//
//	go run ./examples/counter-preimage
//
// An 8-bit enabled counter moves from state k to k+1 when en=1 and holds
// at k when en=0, so the preimage of any single state {k} is exactly
// {k-1, k}. The example computes this with the success-driven engine,
// shows the witness inputs, and then widens the target to a cube to show
// cube-level preimages.
package main

import (
	"fmt"
	"log"

	"allsatpre"
)

func main() {
	const n = 8
	c := allsatpre.NewCounter(n, true, false)
	fmt.Println("circuit:", c.Stats())

	// Target: the single state 00010100 (decimal 40, LSB first).
	target := "00010100"
	res, err := allsatpre.Preimage(c, allsatpre.Options{WithInputs: true}, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preimage of {%s}: %s states (expect 2: k-1 with en=1, k with en=0)\n",
		target, res.Count)
	for _, cb := range res.States.Cubes() {
		fmt.Println("  state:", cb)
	}
	fmt.Println("witness (state ++ en) cubes:")
	for _, cb := range res.Pairs.Cubes() {
		fmt.Println("  ", cb)
	}

	// A cube target: all states with the top bit set (128 states). Its
	// preimage is the half-space that counts or holds into it.
	res2, err := allsatpre.Preimage(c, allsatpre.Options{}, "XXXXXXX1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preimage of top-half (128 states): %s states in %d cubes\n",
		res2.Count, res2.States.Len())

	// Success-driven vs blocking search effort on the same problem.
	for _, eng := range []allsatpre.Engine{allsatpre.EngineSuccessDriven, allsatpre.EngineBlocking} {
		r, err := allsatpre.Preimage(c, allsatpre.Options{Engine: eng}, "XXXXXXX1")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("engine %-14s decisions=%-6d conflicts=%-6d cubes=%d\n",
			eng, r.Stats.Decisions, r.Stats.Conflicts, r.Stats.Cubes)
	}
}
