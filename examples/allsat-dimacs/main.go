// Projected all-SAT over raw CNF — the solver outside the circuit flow.
//
//	go run ./examples/allsat-dimacs
//
// Builds a DIMACS formula in memory (a 6-bit odd-parity constraint plus a
// side condition), enumerates all solutions projected onto the first
// three variables with each engine, and prints the covers. Shows how the
// "c proj" convention carries the projection inside the file.
package main

import (
	"fmt"
	"log"
	"strings"

	"allsatpre"
)

const formula = `c odd parity over x1..x4, implication chain on x5 x6
c proj 1 2 3
p cnf 6 10
1 2 3 4 0
1 -2 -3 4 0
-1 2 -3 4 0
-1 -2 3 4 0
1 -2 3 -4 0
1 2 -3 -4 0
-1 2 3 -4 0
-1 -2 -3 -4 0
-1 5 0
-5 6 0
`

func main() {
	for _, eng := range []allsatpre.Engine{
		allsatpre.EngineSuccessDriven,
		allsatpre.EngineBlocking,
		allsatpre.EngineLifting,
	} {
		res, err := allsatpre.EnumerateDimacs(strings.NewReader(formula), eng, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s: %s projected solutions in %d cubes "+
			"(decisions=%d conflicts=%d)\n",
			eng, res.Count, res.Cover.Len(),
			res.Stats.Decisions, res.Stats.Conflicts)
		for _, cb := range res.Cover.Cubes() {
			fmt.Println("   ", cb)
		}
	}

	// Override the projection from the caller: project onto x4 only.
	res, err := allsatpre.EnumerateDimacs(strings.NewReader(formula),
		allsatpre.EngineSuccessDriven, []int{4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projection onto x4: %s solutions\n", res.Count)
}
