// Test-vector generation: drive a circuit into a target state and dump
// the stimulus as a VCD waveform.
//
//	go run ./examples/test-vectors
//
// The witness iterator streams (state, input) pairs whose next state hits
// the target — the preimage machinery doing ATPG-style justification.
// The example takes the first few witnesses for a FIFO-controller
// condition, validates them by simulation, then asks the model checker
// for a full multi-cycle stimulus from reset and writes it as fifo.vcd.
package main

import (
	"fmt"
	"log"
	"os"

	"allsatpre"
	"allsatpre/internal/circuit"
)

func main() {
	c := allsatpre.NewFIFOCtrl(2) // latches: h0 h1 t0 t1 lastPush
	fmt.Println("circuit:", c.Stats())

	// One-step witnesses for "the FIFO reports full" (full ⇔ head=tail
	// and lastPush): which (state, push/pop) configurations get there?
	wi, err := allsatpre.Witnesses(c, allsatpre.Options{}, "XXXX1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first witnesses for lastPush' = 1 (state h0h1t0t1lp / inputs push,pop):")
	for k := 0; k < 3; k++ {
		w, ok := wi.Next()
		if !ok {
			break
		}
		fmt.Printf("  state %s  inputs %s\n", w.State, w.Inputs)
		// Validate by simulation (free bits -> 0).
		st := make([]bool, 5)
		for i, tv := range w.State {
			st[i] = tv.String() == "1"
		}
		in := make([]bool, 2)
		for i, tv := range w.Inputs {
			in[i] = tv.String() == "1"
		}
		_, next, err := allsatpre.SimulateStep(c, st, in)
		if err != nil {
			log.Fatal(err)
		}
		if !next[4] {
			log.Fatal("witness failed simulation")
		}
	}

	// A full stimulus from reset: reach "FIFO full with pointers at 0"
	// (head=tail=0, lastPush=1 — needs 4 pushes wrapping the pointer).
	init, _ := allsatpre.Target(c, "00000")
	goal, _ := allsatpre.Target(c, "00001")
	res, err := allsatpre.CheckReachable(c, init, goal, -1, allsatpre.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Reachable {
		log.Fatal("full-at-zero should be reachable")
	}
	fmt.Printf("stimulus of %d cycles reaches full-at-zero\n", res.Trace.Steps())

	f, err := os.Create("fifo.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := circuit.WriteVCD(f, c, res.Trace.States, res.Trace.Inputs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("waveform written to fifo.vcd (open with GTKWave)")
}
