// Package allsatpre is an all-solutions SAT solver for efficient preimage
// computation on sequential circuits — a from-scratch reproduction of the
// system described in "A Novel SAT All-Solutions Solver for Efficient
// Preimage Computation" (DATE 2004).
//
// The package is the public facade over the implementation:
//
//   - Load or generate a sequential circuit (ISCAS-89 BENCH format, or the
//     built-in benchmark generators).
//   - Describe a target state set as "01X" cube patterns over the latches.
//   - Compute its one-step preimage with Preimage, or iterate to a
//     backward-reachability fixpoint with BackwardReach.
//   - Choose among five engines: the paper's success-driven all-SAT
//     enumerator (default), two blocking-clause all-SAT baselines, a
//     blocking-clause-free disjoint enumerator, and a BDD
//     relational-product baseline.
//
// Beyond one-step preimage the facade exposes the surrounding
// model-checking loop: forward images (Image, ForwardReach), k-step
// unrolled preimage (KStepPreimage), unbounded safety checking with
// counterexample traces and checkable inductive-invariant certificates
// (CheckReachable, VerifyInvariant), bounded model checking (BMC), and a
// streaming witness iterator (Witnesses). Circuits load from ISCAS-89
// BENCH or AIGER ASCII files, or from the generator suite.
//
// Projection-style all-SAT over raw DIMACS CNF is exposed through
// EnumerateDimacs for non-circuit uses.
package allsatpre

import (
	"fmt"
	"io"
	"os"

	"allsatpre/internal/aig"
	"allsatpre/internal/allsat"
	"allsatpre/internal/bmc"
	"allsatpre/internal/budget"
	"allsatpre/internal/circuit"
	"allsatpre/internal/cnf"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/gen"
	"allsatpre/internal/lit"
	"allsatpre/internal/pool"
	"allsatpre/internal/preimage"
	"allsatpre/internal/simplify"
	"allsatpre/internal/stats"
	"allsatpre/internal/trans"
)

// Re-exported core types. The aliases make the full functionality of the
// underlying packages available through the public API.
type (
	// Circuit is a gate-level sequential netlist.
	Circuit = circuit.Circuit
	// Cover is a set of states as a disjunction of cubes.
	Cover = cube.Cover
	// Space is an ordered variable space for cubes.
	Space = cube.Space
	// Cube is one "01X" partial assignment.
	Cube = cube.Cube
	// Engine selects a preimage strategy.
	Engine = preimage.Engine
	// Options configures Preimage and BackwardReach.
	Options = preimage.Options
	// Result is a one-step preimage.
	Result = preimage.Result
	// ReachResult is a backward-reachability run.
	ReachResult = preimage.ReachResult
	// EnumStats carries all-SAT search counters.
	EnumStats = allsat.Stats
	// Trace is a concrete counterexample (states + driving inputs).
	Trace = preimage.Trace
	// CheckResult is the outcome of a reachability query.
	CheckResult = preimage.CheckResult
	// Budget imposes resource limits (wall-clock deadline or timeout,
	// context cancellation, conflict/decision/cube caps, BDD node cap) on
	// any computation that accepts it via Options.Budget. The zero Budget
	// is unbounded.
	//
	// The Aborted contract: when a budget trips, every entry point still
	// returns a structured result — Result.Aborted, ReachResult.Aborted,
	// CheckResult.Aborted, or BMCResult.Aborted is set, the matching
	// AbortReason reports which limit tripped, and the partial answer is
	// sound (an under-approximation for preimage/image/reach covers; for
	// CheckReachable a REACHABLE verdict is still trusted, but no
	// unreachability proof is claimed). Truncation is never silent and
	// never an error.
	Budget = budget.Budget
	// AbortReason identifies which resource limit ended a computation.
	AbortReason = budget.Reason
	// StatsRegistry is a hierarchical counter registry; pass one in
	// Options.Stats to observe a run (snapshot as text/JSON, or serve it
	// over HTTP while the computation is in flight).
	StatsRegistry = stats.Registry
	// SimplifyMode is the tri-state switch for the projection-safe CNF
	// preprocessing pass (Options.Simplify, BMCOptions.Simplify,
	// DimacsOptions.Simplify): bounded variable elimination of
	// non-projection variables, subsumption, self-subsuming resolution,
	// and failed-literal probing, with the projected solution set — and
	// therefore every enumerated cover — preserved exactly.
	SimplifyMode = simplify.Mode
	// SimplifyStats reports the preprocessing work of one run
	// (EnumStats.Simplify).
	SimplifyStats = simplify.Stats
)

// NewStatsRegistry creates a named stats registry for Options.Stats.
func NewStatsRegistry(name string) *StatsRegistry { return stats.NewRegistry(name) }

// Abort reasons reported by AbortReason fields.
const (
	AbortNone      = budget.None      // not aborted
	AbortCancelled = budget.Cancelled // Budget.Ctx cancelled
	AbortDeadline  = budget.Deadline  // deadline or timeout expired
	AbortConflicts = budget.Conflicts // conflict cap exhausted
	AbortDecisions = budget.Decisions // decision cap exhausted
	AbortCubes     = budget.Cubes     // cube cap exhausted
	AbortNodes     = budget.Nodes     // BDD node cap exhausted
)

// Simplify modes for SimplifyMode fields: Auto follows each entry
// point's default (on for one-shot enumeration, off for incremental
// sessions), On forces the pass, Off disables it.
const (
	SimplifyAuto = simplify.Auto
	SimplifyOn   = simplify.On
	SimplifyOff  = simplify.Off
)

// Engine constants (see the preimage package for semantics).
const (
	EngineSuccessDriven = preimage.EngineSuccessDriven
	EngineBlocking      = preimage.EngineBlocking
	EngineLifting       = preimage.EngineLifting
	EngineBDD           = preimage.EngineBDD
	EngineDisjoint      = preimage.EngineDisjoint
)

// LoadBench reads a sequential circuit from an ISCAS-89 BENCH file.
func LoadBench(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return circuit.ParseBench(path, f)
}

// ParseBench parses BENCH-format text.
func ParseBench(name, src string) (*Circuit, error) {
	return circuit.ParseBenchString(name, src)
}

// LoadAiger reads a sequential circuit from an AIGER ASCII (.aag) file
// and converts it to the gate-level model.
func LoadAiger(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := aig.ParseAiger(path, f)
	if err != nil {
		return nil, err
	}
	return g.ToCircuit().Circuit, nil
}

// Target builds a target state set for a circuit from "01X" patterns, one
// character per latch in declaration order.
func Target(c *Circuit, patterns ...string) (*Cover, error) {
	n := len(c.Latches)
	for _, p := range patterns {
		if len(p) != n {
			return nil, fmt.Errorf("allsatpre: pattern %q has %d positions, circuit has %d latches",
				p, len(p), n)
		}
		for _, r := range p {
			switch r {
			case '0', '1', 'X', 'x', '-':
			default:
				return nil, fmt.Errorf("allsatpre: pattern %q: invalid character %q (want 0, 1, X)", p, r)
			}
		}
	}
	return trans.TargetFromPatterns(n, patterns...), nil
}

// Preimage computes the one-step preimage of the target patterns. If
// opts.Budget trips mid-run the result reports Aborted with a sound
// partial cover (a subset of the true preimage) — see Budget.
func Preimage(c *Circuit, opts Options, patterns ...string) (*Result, error) {
	target, err := Target(c, patterns...)
	if err != nil {
		return nil, err
	}
	return preimage.Compute(c, target, opts)
}

// PreimageOf computes the one-step preimage of an explicit cover.
func PreimageOf(c *Circuit, target *Cover, opts Options) (*Result, error) {
	return preimage.Compute(c, target, opts)
}

// BackwardReach iterates preimages from the target patterns until a
// fixpoint or maxSteps steps (maxSteps <= 0 runs to fixpoint). A budget
// abort in any layer marks the result Aborted and suppresses the
// Fixpoint claim: a truncated layer can never prove convergence.
func BackwardReach(c *Circuit, opts Options, maxSteps int, patterns ...string) (*ReachResult, error) {
	target, err := Target(c, patterns...)
	if err != nil {
		return nil, err
	}
	return preimage.Reach(c, target, maxSteps, opts)
}

// Image computes the one-step forward image of the initial-state
// patterns (the dual of Preimage).
func Image(c *Circuit, opts Options, patterns ...string) (*Result, error) {
	init, err := Target(c, patterns...)
	if err != nil {
		return nil, err
	}
	return preimage.Image(c, init, opts)
}

// ImageOf computes the forward image of an explicit cover.
func ImageOf(c *Circuit, init *Cover, opts Options) (*Result, error) {
	return preimage.Image(c, init, opts)
}

// ForwardReach iterates images from the initial patterns until a fixpoint
// or maxSteps steps — the full reachable state set.
func ForwardReach(c *Circuit, opts Options, maxSteps int, patterns ...string) (*ReachResult, error) {
	init, err := Target(c, patterns...)
	if err != nil {
		return nil, err
	}
	return preimage.ForwardReach(c, init, maxSteps, opts)
}

// CheckReachable decides whether any state of bad is reachable from any
// state of init (backward fixpoint proof or concrete counterexample
// trace). maxSteps <= 0 runs until the answer is definitive. On a
// complete UNREACHABLE verdict the result carries an inductive invariant
// certificate; check it with VerifyInvariant. When opts.Budget trips,
// the result reports Aborted: a REACHABLE verdict found before the trip
// is still trusted, but no unreachability claim is made.
func CheckReachable(c *Circuit, init, bad *Cover, maxSteps int, opts Options) (*CheckResult, error) {
	return preimage.CheckReachable(c, init, bad, maxSteps, opts)
}

// VerifyInvariant independently checks an unreachability certificate:
// init ⊆ inv, inv ∩ bad = ∅, and Img(inv) ⊆ inv.
func VerifyInvariant(c *Circuit, init, bad, inv *Cover, opts Options) error {
	return preimage.VerifyInvariant(c, init, bad, inv, opts)
}

// KStepPreimage enumerates, in one unrolled all-SAT call, every state
// that can reach the target patterns within at most k transitions.
func KStepPreimage(c *Circuit, opts Options, k int, patterns ...string) (*Result, error) {
	target, err := Target(c, patterns...)
	if err != nil {
		return nil, err
	}
	return preimage.KStepPreimage(c, target, k, opts)
}

// BMCResult is the outcome of a bounded model checking run.
type BMCResult = bmc.Result

// BMCOptions tunes the BMC solver and bounds its resources.
type BMCOptions = bmc.Options

// BMC searches for a counterexample of length ≤ bound by time-frame
// expansion with incremental SAT. Unlike CheckReachable it cannot prove
// unreachability — only "no counterexample within the bound".
func BMC(c *Circuit, init, bad *Cover, bound int) (*BMCResult, error) {
	return bmc.Check(c, init, bad, bound)
}

// BMCOpts is BMC with solver tuning and a resource budget: when the
// budget trips, the result reports Aborted with the deepest depth
// certified counterexample-free — never an error.
func BMCOpts(c *Circuit, init, bad *Cover, bound int, opts BMCOptions) (*BMCResult, error) {
	return bmc.CheckOpts(c, init, bad, bound, opts)
}

// Witness is one (state, input) cube driving the circuit into a target.
type Witness = preimage.Witness

// WitnessIterator streams preimage witnesses lazily.
type WitnessIterator = preimage.WitnessIterator

// Witnesses prepares a streaming enumeration of (state, input) pairs
// whose one-step successor lies in the target patterns — take the first
// for a test vector, or drain it for the full witness set.
func Witnesses(c *Circuit, opts Options, patterns ...string) (*WitnessIterator, error) {
	target, err := Target(c, patterns...)
	if err != nil {
		return nil, err
	}
	return preimage.NewWitnessIterator(c, target, opts)
}

// SimulateStep evaluates one clock cycle of the circuit: given the latch
// state (declaration order) and a primary-input vector, it returns the
// outputs and the next state.
func SimulateStep(c *Circuit, state, inputs []bool) (outputs, nextState []bool, err error) {
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		return nil, nil, err
	}
	if len(state) != len(c.Latches) || len(inputs) != len(c.Inputs) {
		return nil, nil, fmt.Errorf("allsatpre: SimulateStep needs %d state bits and %d inputs",
			len(c.Latches), len(c.Inputs))
	}
	outputs, nextState = sim.Step(state, inputs)
	return outputs, nextState, nil
}

// Optimize returns a behaviourally equivalent cleaned copy of the
// circuit: constants propagated, buffer chains collapsed, dead logic
// swept. The I/O and latch interface is preserved.
func Optimize(c *Circuit) (*Circuit, error) {
	opt, _, err := circuit.Optimize(c)
	return opt, err
}

// StateSpace returns the canonical state space of a circuit (one position
// per latch, named by the latch signals).
func StateSpace(c *Circuit) *Space { return preimage.StateSpace(c) }

// DimacsOptions configures EnumerateDimacsOpts.
type DimacsOptions struct {
	// Engine selects the all-SAT engine (BDD is not applicable to raw CNF).
	Engine Engine
	// Proj lists 1-based DIMACS projection variables; nil uses the file's
	// "c proj" line, or all variables.
	Proj []int
	// Preprocess applies model-preserving CNF reductions (subsumption,
	// self-subsuming resolution, unit propagation) before enumeration.
	// Unlike Simplify it never eliminates variables, so total models are
	// preserved, not just the projection.
	Preprocess bool
	// Simplify controls the projection-safe preprocessing pass
	// (internal/simplify): non-projection variables may be resolved away
	// entirely — the enumerated projected cover is unchanged, but models
	// of the simplified formula are partial with respect to the original.
	// Auto resolves to on.
	Simplify SimplifyMode
	// Budget bounds the enumeration; a tripped limit yields a partial
	// cover with Aborted set on the result (sound under-approximation).
	Budget Budget
	// MaxCubes caps the number of cubes enumerated by the blocking and
	// lifting engines (0 = unlimited); the tighter of this and
	// Budget.MaxCubes wins. The success-driven engine builds a BDD
	// rather than cubes and is bounded by the Budget instead.
	MaxCubes int
	// Workers > 1 enumerates in parallel over guiding-path subcubes: the
	// success-driven engine uses the work-stealing pool (internal/pool),
	// the blocking/lifting engines per-subcube solvers. The result
	// denotes the same solution set as the sequential run.
	Workers int
	// Stats, when non-nil, receives search counters for the run.
	Stats *StatsRegistry
}

// EnumerateDimacs reads a DIMACS CNF (optionally carrying a "c proj ..."
// line) and enumerates all solutions projected onto the given variables
// (1-based DIMACS numbering; nil uses the file's projection line, or all
// variables). It returns the allsat result with cover and exact count.
func EnumerateDimacs(r io.Reader, engine Engine, projDimacs []int) (*allsat.Result, error) {
	return EnumerateDimacsOpts(r, DimacsOptions{Engine: engine, Proj: projDimacs})
}

// EnumerateDimacsOpts is EnumerateDimacs with the full option set.
func EnumerateDimacsOpts(r io.Reader, o DimacsOptions) (*allsat.Result, error) {
	engine, projDimacs := o.Engine, o.Proj
	f, fileProj, err := cnf.ParseDimacs(r)
	if err != nil {
		return nil, err
	}
	if o.Preprocess {
		nVars := f.NumVars
		if pres := cnf.Preprocess(f); pres.Unsat {
			// Leave the contradiction for the enumerators to report as an
			// empty result uniformly.
			f = cnf.New(nVars)
			f.AddClause(cnf.Clause{})
		}
		f.NumVars = nVars // reductions never add variables
	}
	var proj []lit.Var
	switch {
	case projDimacs != nil:
		for _, d := range projDimacs {
			if d <= 0 || d > f.NumVars {
				return nil, fmt.Errorf("allsatpre: projection variable %d out of range", d)
			}
			proj = append(proj, lit.Var(d-1))
		}
	case len(fileProj) > 0:
		proj = fileProj
	default:
		for v := 0; v < f.NumVars; v++ {
			proj = append(proj, lit.Var(v))
		}
	}
	space := cube.NewSpace(proj)

	// Projection-safe simplification is decided here for every engine —
	// including the success-driven core/pool paths below, which have no
	// preprocessing of their own — so the allsat layer is told not to
	// repeat it.
	var sstats simplify.Stats
	if o.Simplify.Enabled(true) {
		isProj := make([]bool, f.NumVars)
		for _, v := range proj {
			isProj[v] = true
		}
		sres := simplify.Run(f, func(v lit.Var) bool { return isProj[v] }, simplify.Options{})
		sstats = sres.Stats
	}
	bud := o.Budget.Materialize()
	asOpts := allsat.Options{
		Budget:   bud,
		MaxCubes: uint64(o.MaxCubes),
		Workers:  o.Workers,
		Simplify: simplify.Off,
	}
	var res *allsat.Result
	switch engine {
	case EngineSuccessDriven:
		if o.Workers > 1 {
			res = pool.EnumerateToResult(f, space, pool.Options{
				Workers: o.Workers,
				Core:    core.DefaultOptions(),
				Budget:  bud,
				Stats:   o.Stats,
			})
			break
		}
		co := core.DefaultOptions()
		co.Budget = bud
		res = core.EnumerateToResult(f, space, co)
	case EngineBlocking:
		res = allsat.EnumerateBlocking(f, space, asOpts)
	case EngineLifting:
		res = allsat.EnumerateLifting(f, space, asOpts)
	case EngineDisjoint:
		res = allsat.EnumerateDisjoint(f, space, asOpts)
	default:
		return nil, fmt.Errorf("allsatpre: engine %v cannot enumerate raw CNF", engine)
	}
	res.Stats.Simplify = sstats
	if o.Stats != nil {
		o.Stats.Counter("decisions").Add(res.Stats.Decisions)
		o.Stats.Counter("propagations").Add(res.Stats.Propagations)
		o.Stats.Counter("conflicts").Add(res.Stats.Conflicts)
		o.Stats.Counter("solutions").Add(res.Stats.Solutions)
		o.Stats.Counter("cubes").Add(res.Stats.Cubes)
		o.Stats.MaxGauge("bdd-nodes", int64(res.Stats.BDDNodes))
		if sstats.Applied {
			o.Stats.Counter("simplify-runs").Inc()
			o.Stats.Counter("simplify-vars-eliminated").Add(uint64(sstats.VarsEliminated))
			o.Stats.Counter("simplify-clauses-subsumed").Add(uint64(sstats.ClausesSubsumed))
			o.Stats.Counter("simplify-lits-strengthened").Add(uint64(sstats.LitsStrengthened))
			o.Stats.Counter("simplify-resolvents-added").Add(uint64(sstats.ResolventsAdded))
			o.Stats.Counter("simplify-probe-failures").Add(uint64(sstats.ProbeFailures))
		}
		if res.Aborted {
			o.Stats.Counter("aborts").Inc()
			o.Stats.Counter("abort-" + res.Reason.String()).Inc()
		}
	}
	return res, nil
}

// Benchmark circuit generators (see internal/gen for parameters).
var (
	// NewCounter builds an n-bit binary counter.
	NewCounter = gen.Counter
	// NewShiftRegister builds an n-bit shift register.
	NewShiftRegister = gen.ShiftRegister
	// NewLFSR builds an n-bit Fibonacci LFSR with the given taps.
	NewLFSR = gen.LFSR
	// NewJohnson builds an n-bit Johnson counter.
	NewJohnson = gen.Johnson
	// NewGrayCounter builds an n-bit Gray-code counter.
	NewGrayCounter = gen.GrayCounter
	// NewTrafficLight builds the traffic-controller FSM.
	NewTrafficLight = gen.TrafficLight
	// NewSLike builds a seeded random reconvergent sequential circuit.
	NewSLike = gen.SLike
	// NewMultCore builds the n×n array-multiplier workload (BDD-hostile).
	NewMultCore = gen.MultCore
	// NewArbiter builds an n-client round-robin arbiter.
	NewArbiter = gen.Arbiter
	// NewFIFOCtrl builds a 2^n-entry FIFO controller skeleton.
	NewFIFOCtrl = gen.FIFOCtrl
)

// SLikeParams re-exports the random-circuit parameter struct.
type SLikeParams = gen.SLikeParams

// BenchmarkSuite returns the standard named benchmark circuits used by
// the experiments.
func BenchmarkSuite() []gen.NamedCircuit { return gen.Suite() }
