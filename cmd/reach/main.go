// Command reach runs backward reachability from a target state set,
// printing the frontier sizes per step.
//
// Usage:
//
//	reach [-engine success|blocking|lifting|disjoint|bdd] [-steps N] \
//	      circuit.bench|spec pattern [pattern ...]
//
// -steps <= 0 (the default) runs to the fixpoint.
package main

import (
	"flag"
	"fmt"
	"os"

	"allsatpre"
	"allsatpre/internal/genspec"
	"allsatpre/internal/stats"
)

func main() {
	engine := flag.String("engine", "success", "engine: success | blocking | lifting | disjoint | bdd")
	steps := flag.Int("steps", 0, "maximum preimage steps (<= 0: run to fixpoint)")
	bf := genspec.AddBudgetFlags(flag.CommandLine)
	incremental := genspec.AddIncrementalFlag(flag.CommandLine)
	simplifyFlag := genspec.AddSimplifyFlag(flag.CommandLine)
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: reach [flags] circuit.bench|spec pattern [pattern ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	c, err := genspec.Resolve(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	eng, err := genspec.Engine(*engine)
	if err != nil {
		fatal(err)
	}
	smode, err := genspec.SimplifyMode(*simplifyFlag)
	if err != nil {
		fatal(err)
	}
	t := stats.StartTimer()
	reg := bf.StatsRegistry("reach")
	r, err := allsatpre.BackwardReach(c,
		allsatpre.Options{Engine: eng, Budget: bf.Budget(), Parallel: bf.Workers,
			Incremental: *incremental, Simplify: smode, Stats: reg},
		*steps, flag.Args()[1:]...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit: %s\n", c.Stats())
	fmt.Printf("engine:  %s\n", eng)
	tb := stats.NewTable("backward reachability", "step", "new-states", "cubes")
	for k := range r.Frontiers {
		tb.AddRow(k, r.FrontierCounts[k].String(), r.Frontiers[k].Len())
	}
	tb.Render(os.Stdout)
	genspec.Truncated(os.Stdout, r.Aborted, r.AbortReason)
	if r.Aborted {
		fmt.Printf("total states (partial): %s   fixpoint: %v   steps: %d   time: %v\n",
			r.AllCount, r.Fixpoint, r.Steps, t.Elapsed())
	} else {
		fmt.Printf("total states: %s   fixpoint: %v   steps: %d   time: %v\n",
			r.AllCount, r.Fixpoint, r.Steps, t.Elapsed())
	}
	if r.Stats.Decisions > 0 {
		fmt.Printf("decisions: %d  conflicts: %d  solutions: %d\n",
			r.Stats.Decisions, r.Stats.Conflicts, r.Stats.Solutions)
	}
	if r.Stats.CacheLookups > 0 {
		fmt.Printf("memo: %d/%d hits\n", r.Stats.CacheHits, r.Stats.CacheLookups)
	}
	bf.Report(os.Stdout, reg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reach:", err)
	os.Exit(1)
}
