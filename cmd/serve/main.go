// Command serve runs the enumeration service: a long-lived HTTP daemon
// that streams all-SAT covers as NDJSON and keeps named incremental
// reachability sessions alive across requests.
//
// Usage:
//
//	serve [-addr :8080] [-max-concurrent N] [-max-sessions N] \
//	      [-fence-timeout 60s] [-fence-conflicts N] [-fence-cubes N] \
//	      [-admission-wait 200ms] [-admission-queue N] \
//	      [-tenant-fences SPEC] [-tenant-header X-Tenant] \
//	      [-pool-bytes N] [-sched-workers N] [-pprof] ...
//
// Requests execute on a pooled runtime: solvers and BDD managers are
// Reset and reused from a warm free-list (capped at -pool-bytes), and
// parallel subcube jobs from all in-flight requests share one
// fair-share executor pool (-sched-workers) keyed by the tenant id in
// the -tenant-header request header. At admission saturation a request
// waits up to -admission-wait in a bounded FIFO queue before 429; the
// Retry-After hint tracks the observed queue drain time.
//
// Endpoints (see the README's Serving section for curl examples):
//
//	POST   /v1/enumerate          stream DIMACS solutions as NDJSON cubes
//	POST   /v1/preimage           one-step preimage of a BENCH circuit
//	POST   /v1/sessions           create a named incremental session
//	POST   /v1/sessions/{id}/step advance one reachability frontier
//	DELETE /v1/sessions/{id}      close a session
//	GET    /v1/sessions           list live sessions
//	GET    /debug/stats           live server.* and engine counters
//	GET    /healthz               liveness probe
//
// On SIGINT/SIGTERM the daemon drains: in-flight streams finish with a
// TRUNCATED(shutdown) summary line, sessions are closed, and the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"allsatpre/internal/budget"
	"allsatpre/internal/server"
	"allsatpre/internal/stats"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max simultaneous solves; 0 = GOMAXPROCS")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "incremental-session LRU capacity")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes")
	maxWorkers := flag.Int("max-workers", 0, "per-request worker-count ceiling; 0 = GOMAXPROCS")
	grace := flag.Duration("grace", 10*time.Second, "shutdown drain grace period")
	fenceTimeout := flag.Duration("fence-timeout", 0, "per-request wall-clock ceiling clamped onto client budgets (0 = none)")
	fenceConflicts := flag.Uint64("fence-conflicts", 0, "SAT-conflict ceiling per request (0 = none)")
	fenceDecisions := flag.Uint64("fence-decisions", 0, "decision ceiling per request (0 = none)")
	fenceCubes := flag.Uint64("fence-cubes", 0, "cube ceiling per request (0 = none)")
	fenceNodes := flag.Int("fence-bdd-nodes", 0, "BDD-node ceiling per request (0 = none)")
	admissionWait := flag.Duration("admission-wait", 0,
		"how long a request may wait in the admission queue at saturation before 429 (0 = reject immediately)")
	admissionQueue := flag.Int("admission-queue", 0,
		"max requests waiting for admission at once; 0 = 2x max-concurrent")
	tenantFences := flag.String("tenant-fences", "",
		"per-tenant fence overrides, e.g. \"alice:timeout=30s,cubes=100000;bob:timeout=2s\" (see README)")
	tenantHeader := flag.String("tenant-header", "",
		"request header carrying the tenant id (default X-Tenant)")
	poolBytes := flag.Int64("pool-bytes", 0,
		"byte ceiling of the warm solver/manager pool; 0 = default (256 MiB), negative disables pooling")
	schedWorkers := flag.Int("sched-workers", 0,
		"shared scheduler executor count; 0 = max-concurrent, negative disables the shared scheduler")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	flag.Parse()

	fences, err := server.ParseFenceSpec(*tenantFences)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}

	reg := stats.NewRegistry("serve")
	srv := server.New(server.Config{
		MaxConcurrent: *maxConcurrent,
		MaxSessions:   *maxSessions,
		MaxBodyBytes:  *maxBody,
		MaxWorkers:    *maxWorkers,
		Fence: budget.Fence{
			MaxTimeout:   *fenceTimeout,
			MaxConflicts: *fenceConflicts,
			MaxDecisions: *fenceDecisions,
			MaxCubes:     *fenceCubes,
			MaxBDDNodes:  *fenceNodes,
		},
		AdmissionWait:  *admissionWait,
		AdmissionQueue: *admissionQueue,
		TenantFences:   fences,
		TenantHeader:   *tenantHeader,
		PoolBytes:      *poolBytes,
		SchedWorkers:   *schedWorkers,
		EnablePprof:    *pprofOn,
		Stats:          reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	// The resolved address line is load-bearing: the verify.sh smoke test
	// (and any supervisor binding port 0) scrapes it to find the port.
	fmt.Printf("serve: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("serve: %v: draining (grace %s)\n", sig, *grace)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	// Drain order matters: first tell in-flight streams to finish with
	// their TRUNCATED(shutdown) trailer, then wait for the connections,
	// then tear down session state.
	srv.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
	}
	srv.Close()
	fmt.Println("serve: drained")
}
