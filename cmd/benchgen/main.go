// Command benchgen writes a generated benchmark circuit as an ISCAS-89
// BENCH file to stdout.
//
// Usage:
//
//	benchgen counter:8 > counter8.bench
//	benchgen slike:3,220,10,10 > slike3.bench
//	benchgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"allsatpre/internal/aig"
	"allsatpre/internal/circuit"
	"allsatpre/internal/gen"
	"allsatpre/internal/genspec"
)

func main() {
	list := flag.Bool("list", false, "list the standard benchmark suite and exit")
	asAag := flag.Bool("aag", false, "emit AIGER ASCII instead of BENCH")
	flag.Parse()
	if *list {
		for _, nc := range gen.Suite() {
			fmt.Printf("%-10s %s\n", nc.Name, nc.Circuit.Stats())
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgen spec   (e.g. counter:8, lfsr:8,0,3,4,5, slike:1,60,6,6)")
		os.Exit(2)
	}
	c, err := genspec.Resolve(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	if *asAag {
		g, err := aig.FromCircuit(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := aig.WriteAiger(os.Stdout, g); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := circuit.WriteBench(os.Stdout, c); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}
