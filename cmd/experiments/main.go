// Command experiments regenerates every table and figure of the
// evaluation (DESIGN.md §4) and prints them. Use -only to run a subset
// and -csv for machine-readable output.
//
// With -stats, the final report includes the BDD kernel gauges recorded
// per engine run (DESIGN.md §kernel): unique-table load factor and mean
// probe length (kernel-load-factor, kernel-avg-probes), rehash count, and
// apply-cache lookups/hits/evictions and occupancy — the numbers behind
// the scripts/bench.sh trajectory.
//
// Usage:
//
//	experiments [-only table1,fig2] [-csv] [-steps N] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"allsatpre/internal/experiments"
	"allsatpre/internal/genspec"
	"allsatpre/internal/stats"
)

func main() {
	only := flag.String("only", "", "comma-separated subset: table1..table7, fig1..fig4")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	steps := flag.Int("steps", 6, "step cap for table3 reachability")
	bf := genspec.AddBudgetFlags(flag.CommandLine)
	incremental := genspec.AddIncrementalFlag(flag.CommandLine)
	simplifyFlag := genspec.AddSimplifyFlag(flag.CommandLine)
	flag.Parse()

	smode, err := genspec.SimplifyMode(*simplifyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	// Budgeted rows truncate loudly inside the tables (">N TRUNCATED(...)"
	// cells) instead of hanging the harness on a wedged workload.
	experiments.RunBudget = bf.Budget()
	experiments.RunWorkers = bf.Workers
	experiments.RunIncremental = *incremental
	experiments.RunSimplify = smode
	reg := bf.StatsRegistry("experiments")
	experiments.RunStats = reg

	want := map[string]bool{}
	if *only != "" {
		for _, tok := range strings.Split(*only, ",") {
			want[strings.TrimSpace(tok)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	emit := func(tb *stats.Table) {
		if *csv {
			fmt.Printf("# %s\n", tb.Title)
			tb.RenderCSV(os.Stdout)
		} else {
			tb.Render(os.Stdout)
		}
		fmt.Println()
	}

	if sel("table1") {
		tb, _ := experiments.Table1()
		emit(tb)
	}
	if sel("table2") {
		tb, _ := experiments.Table2()
		emit(tb)
	}
	if sel("table3") {
		tb, _ := experiments.Table3(*steps)
		emit(tb)
	}
	if sel("fig1") {
		tb, _ := experiments.Fig1([]int{2, 4, 6, 8, 10, 12}, 16)
		emit(tb)
	}
	if sel("fig2") {
		tb, _ := experiments.Fig2([]int{40, 80, 160, 320})
		emit(tb)
	}
	if sel("fig3") {
		tb, _ := experiments.Fig3()
		emit(tb)
	}
	if sel("fig4") {
		tb, _ := experiments.Fig4([]float64{0.01, 0.1, 0.25, 0.4, 0.6})
		emit(tb)
	}
	if sel("table4") {
		tb, _ := experiments.Table4()
		emit(tb)
	}
	if sel("table5") {
		tb, _ := experiments.Table5()
		emit(tb)
	}
	if sel("table6") {
		tb, _ := experiments.Table6()
		emit(tb)
	}
	if sel("table7") {
		tb, _ := experiments.Table7()
		emit(tb)
	}
	bf.Report(os.Stdout, reg)
}
