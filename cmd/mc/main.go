// Command mc is an unbounded safety model checker built on iterated
// preimage computation: it decides whether a bad state set is reachable
// from an initial state set and prints either a concrete counterexample
// trace or the fixpoint proof of unreachability.
//
// Usage:
//
//	mc [-engine success|blocking|lifting|disjoint|bdd] [-steps N] \
//	   circuit.bench|spec INIT-PATTERN BAD-PATTERN...
//
// The first pattern is the initial state set; the remaining patterns are
// the union of bad-state cubes.
package main

import (
	"flag"
	"fmt"
	"os"

	"allsatpre"
	"allsatpre/internal/circuit"
	"allsatpre/internal/genspec"
	"allsatpre/internal/stats"
)

func main() {
	engine := flag.String("engine", "success", "engine: success | blocking | lifting | disjoint | bdd")
	steps := flag.Int("steps", 0, "maximum preimage iterations (<= 0: unbounded)")
	vcd := flag.String("vcd", "", "write the counterexample trace as a VCD waveform here")
	bf := genspec.AddBudgetFlags(flag.CommandLine)
	incremental := genspec.AddIncrementalFlag(flag.CommandLine)
	simplifyFlag := genspec.AddSimplifyFlag(flag.CommandLine)
	flag.Parse()
	if flag.NArg() < 3 {
		fmt.Fprintln(os.Stderr, "usage: mc [flags] circuit INIT-PATTERN BAD-PATTERN [BAD-PATTERN ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	c, err := genspec.Resolve(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	eng, err := genspec.Engine(*engine)
	if err != nil {
		fatal(err)
	}
	init, err := allsatpre.Target(c, flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	bad, err := allsatpre.Target(c, flag.Args()[2:]...)
	if err != nil {
		fatal(err)
	}

	smode, err := genspec.SimplifyMode(*simplifyFlag)
	if err != nil {
		fatal(err)
	}

	t := stats.StartTimer()
	reg := bf.StatsRegistry("mc")
	res, err := allsatpre.CheckReachable(c, init, bad, *steps,
		allsatpre.Options{Engine: eng, Budget: bf.Budget(), Parallel: bf.Workers,
			Incremental: *incremental, Simplify: smode, Stats: reg})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit: %s\n", c.Stats())
	switch {
	case res.Reachable:
		fmt.Printf("REACHABLE in %d steps (%v)\n", res.Steps, t.Elapsed())
		fmt.Println("counterexample trace (state / inputs):")
		for i, st := range res.Trace.States {
			fmt.Printf("  state %2d: %s\n", i, bits(st))
			if i < len(res.Trace.Inputs) {
				fmt.Printf("  input %2d: %s\n", i, bits(res.Trace.Inputs[i]))
			}
		}
		if *vcd != "" {
			f, err := os.Create(*vcd)
			if err != nil {
				fatal(err)
			}
			if err := circuit.WriteVCD(f, c, res.Trace.States, res.Trace.Inputs); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Printf("waveform written to %s\n", *vcd)
		}
	case res.Complete:
		fmt.Printf("UNREACHABLE — backward fixpoint after %d iterations (%v)\n",
			res.Steps, t.Elapsed())
		if res.Invariant != nil {
			if err := allsatpre.VerifyInvariant(c, init, bad, res.Invariant, allsatpre.Options{Engine: eng}); err != nil {
				fatal(fmt.Errorf("invariant certificate failed verification: %w", err))
			}
			fmt.Printf("inductive invariant certificate verified (%d cubes)\n", res.Invariant.Len())
		}
	case res.Aborted:
		// A truncated layer proves nothing about unreachability: say so
		// loudly and exit nonzero, never claim a verdict.
		genspec.Truncated(os.Stdout, true, res.AbortReason)
		fmt.Printf("UNDECIDED after %d iterations (budget exhausted: %s, %v)\n",
			res.Steps, res.AbortReason, t.Elapsed())
		bf.Report(os.Stdout, reg)
		os.Exit(3)
	default:
		fmt.Printf("UNDECIDED after %d iterations (step cap hit, %v)\n", res.Steps, t.Elapsed())
		bf.Report(os.Stdout, reg)
		os.Exit(3)
	}
	bf.Report(os.Stdout, reg)
}

func bits(b []bool) string {
	out := make([]byte, len(b))
	for i, v := range b {
		if v {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mc:", err)
	os.Exit(1)
}
