// Command satcheck is a plain DIMACS SAT solver front end with DRUP
// proof emission and built-in proof checking.
//
// Usage:
//
//	satcheck [-workers N] [-proof out.drup] [-verify] [-model] file.cnf|-
//
// With -workers > 1 a portfolio of solvers races on the same formula,
// each diversified by decision seed and random-decision frequency; the
// first definitive answer wins and cancels the rest. The winner writes
// its own DRUP proof, so -proof and -verify compose with the portfolio.
//
// Exit status: 10 satisfiable, 20 unsatisfiable (the conventional SAT
// competition codes), 1 on error.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"allsatpre/internal/budget"
	"allsatpre/internal/cnf"
	"allsatpre/internal/genspec"
	"allsatpre/internal/lit"
	"allsatpre/internal/sat"
	"allsatpre/internal/simplify"
)

func main() {
	proofPath := flag.String("proof", "", "write a DRUP proof here on UNSAT")
	verify := flag.Bool("verify", false, "self-check the DRUP proof after an UNSAT answer")
	model := flag.Bool("model", false, "print the model as a DIMACS v-line on SAT")
	workers := flag.Int("workers", runtime.NumCPU(), "portfolio size (default = CPU count; 1 = single solver)")
	simplifyFlag := genspec.AddSimplifyFlag(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satcheck [flags] file.cnf|-")
		flag.PrintDefaults()
		os.Exit(1)
	}

	var in io.Reader
	if flag.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	formula, _, err := cnf.ParseDimacs(in)
	if err != nil {
		fatal(err)
	}

	wantProof := *proofPath != "" || *verify
	smode, err := genspec.SimplifyMode(*simplifyFlag)
	if err != nil {
		fatal(err)
	}
	// Unlike the enumeration tools, a decision procedure defaults the
	// preprocessor off: a DRUP proof must derive from the original clause
	// database, so -simplify=on and proof emission are mutually exclusive,
	// and auto keeps the formula the proof checker will see.
	var sres *simplify.Result
	if smode == simplify.On {
		if wantProof {
			fatal(fmt.Errorf("-simplify=on is incompatible with -proof/-verify: the DRUP proof must be over the original formula"))
		}
		// No projection to protect here, so nothing is frozen: full
		// variable elimination, with the model reconstructed from the
		// elimination stack afterwards.
		sres = simplify.Run(formula, func(lit.Var) bool { return false }, simplify.Options{})
		fmt.Printf("c simplify: vars-eliminated=%d units=%d subsumed=%d strengthened=%d clauses %d->%d\n",
			sres.Stats.VarsEliminated, sres.Stats.UnitsFixed, sres.Stats.ClausesSubsumed,
			sres.Stats.LitsStrengthened, sres.Stats.ClausesBefore, sres.Stats.ClausesAfter)
	}
	st, proofBuf, stats := solve(formula, *workers, wantProof)
	if st == sat.Sat && sres != nil {
		// Extend the simplified-formula model over the eliminated
		// variables so the printed v-line satisfies the original formula.
		stats.model = sres.Extend(stats.model)
	}
	fmt.Printf("c vars=%d clauses=%d decisions=%d conflicts=%d propagations=%d\n",
		formula.NumVars, len(formula.Clauses), stats.decisions, stats.conflicts, stats.propagations)

	switch st {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if *model {
			fmt.Print("v ")
			for v := 0; v < formula.NumVars; v++ {
				d := v + 1
				if !stats.model[v] {
					d = -d
				}
				fmt.Printf("%d ", d)
			}
			fmt.Println("0")
		}
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		if *proofPath != "" {
			if err := os.WriteFile(*proofPath, proofBuf.Bytes(), 0o644); err != nil {
				fatal(err)
			}
		}
		if *verify {
			if err := sat.CheckDRUP(formula, bytes.NewReader(proofBuf.Bytes())); err != nil {
				fatal(fmt.Errorf("proof self-check FAILED: %w", err))
			}
			fmt.Println("c DRUP proof verified")
		}
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
		os.Exit(1)
	}
}

type answer struct {
	status       sat.Status
	model        []bool
	decisions    uint64
	conflicts    uint64
	propagations uint64
}

// solve runs either a single solver or a racing portfolio and returns the
// winning status, the winner's proof buffer, and the winner's statistics.
func solve(formula *cnf.Formula, workers int, wantProof bool) (sat.Status, *bytes.Buffer, answer) {
	if workers <= 1 {
		buf := &bytes.Buffer{}
		s := sat.FromFormula(formula, sat.DefaultOptions())
		if wantProof {
			s.SetProofWriter(buf)
		}
		st := s.Solve()
		s.FlushProof()
		return st, buf, fromSolver(st, s, formula)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type result struct {
		status sat.Status
		buf    *bytes.Buffer
		ans    answer
	}
	results := make(chan result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		opts := sat.DefaultOptions()
		// Diversify the portfolio: member 0 keeps the default strategy so a
		// portfolio run is never slower to a verdict than the single solver
		// on the same schedule; the rest explore with shifted seeds and an
		// increasing dose of random decisions.
		if i > 0 {
			opts.Seed += int64(i) * 0x9e3779b9
			opts.RandomFreq = 0.01 * float64(i)
		}
		opts.Budget = budget.Budget{Ctx: ctx}
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := &bytes.Buffer{}
			s := sat.FromFormula(formula, opts)
			if wantProof {
				s.SetProofWriter(buf)
			}
			st := s.Solve()
			s.FlushProof()
			results <- result{st, buf, fromSolver(st, s, formula)}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	// The first definitive verdict wins and cancels the rest; cancelled
	// members report Unknown and are ignored unless nobody answered.
	var fallback result
	for r := range results {
		if r.status == sat.Sat || r.status == sat.Unsat {
			cancel()
			go func() {
				for range results {
				}
			}()
			return r.status, r.buf, r.ans
		}
		fallback = r
	}
	return fallback.status, fallback.buf, fallback.ans
}

func fromSolver(st sat.Status, s *sat.Solver, formula *cnf.Formula) answer {
	stats := s.Stats()
	ans := answer{
		status:       st,
		decisions:    stats.Decisions,
		conflicts:    stats.Conflicts,
		propagations: stats.Propagations,
	}
	if st == sat.Sat {
		m := s.Model()
		ans.model = make([]bool, formula.NumVars)
		copy(ans.model, m)
	}
	return ans
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satcheck:", err)
	os.Exit(1)
}
