// Command satcheck is a plain DIMACS SAT solver front end with DRUP
// proof emission and built-in proof checking.
//
// Usage:
//
//	satcheck [-proof out.drup] [-verify] [-model] file.cnf|-
//
// Exit status: 10 satisfiable, 20 unsatisfiable (the conventional SAT
// competition codes), 1 on error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"allsatpre/internal/cnf"
	"allsatpre/internal/sat"
)

func main() {
	proofPath := flag.String("proof", "", "write a DRUP proof here on UNSAT")
	verify := flag.Bool("verify", false, "self-check the DRUP proof after an UNSAT answer")
	model := flag.Bool("model", false, "print the model as a DIMACS v-line on SAT")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satcheck [flags] file.cnf|-")
		flag.PrintDefaults()
		os.Exit(1)
	}

	var in io.Reader
	if flag.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	formula, _, err := cnf.ParseDimacs(in)
	if err != nil {
		fatal(err)
	}

	var proofBuf bytes.Buffer
	s := sat.FromFormula(formula, sat.DefaultOptions())
	if *proofPath != "" || *verify {
		s.SetProofWriter(&proofBuf)
	}
	st := s.Solve()
	s.FlushProof()
	stats := s.Stats()
	fmt.Printf("c vars=%d clauses=%d decisions=%d conflicts=%d propagations=%d\n",
		formula.NumVars, len(formula.Clauses), stats.Decisions, stats.Conflicts, stats.Propagations)

	switch st {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if *model {
			m := s.Model()
			fmt.Print("v ")
			for v := 0; v < formula.NumVars; v++ {
				d := v + 1
				if !m[v] {
					d = -d
				}
				fmt.Printf("%d ", d)
			}
			fmt.Println("0")
		}
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		if *proofPath != "" {
			if err := os.WriteFile(*proofPath, proofBuf.Bytes(), 0o644); err != nil {
				fatal(err)
			}
		}
		if *verify {
			if err := sat.CheckDRUP(formula, bytes.NewReader(proofBuf.Bytes())); err != nil {
				fatal(fmt.Errorf("proof self-check FAILED: %w", err))
			}
			fmt.Println("c DRUP proof verified")
		}
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satcheck:", err)
	os.Exit(1)
}
