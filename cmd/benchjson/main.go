// Command benchjson converts `go test -bench` output (read on stdin)
// into the BENCH_*.json format committed as the repository's performance
// trajectory (see scripts/bench.sh and README "Benchmarks").
//
// The document keeps the raw benchmark lines verbatim under "raw", so a
// recorded run stays benchstat-compatible: extract them with
//
//	jq -r '.current.raw[]' BENCH_1.json > new.txt
//	jq -r '.baseline.raw[]' BENCH_1.json > old.txt
//	benchstat old.txt new.txt
//
// and it parses every metric pair (ns/op, B/op, allocs/op, custom units)
// into numbers so scripts can assert on deltas without a bench parser.
//
// Usage:
//
//	go test -run '^$' -bench Table -benchmem . | benchjson -label $(git rev-parse --short HEAD) -o BENCH_1.json
//	... -baseline old.json    # embed old.json's run as "baseline" and report deltas
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix, with the
	// -GOMAXPROCS suffix kept (benchstat keys on the same string).
	Name string `json:"name"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op", "B/op", "allocs/op",
	// plus any custom b.ReportMetric units such as "states".
	Metrics map[string]float64 `json:"metrics"`
}

// Run is one recorded benchmark invocation.
type Run struct {
	Label  string `json:"label,omitempty"` // e.g. the git commit
	Date   string `json:"date,omitempty"`
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Host context recorded by benchjson itself (not parsed from the
	// bench output): parallel-benchmark numbers are meaningless without
	// the scheduler width and machine they ran on.
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	NumCPU     int    `json:"numcpu,omitempty"`
	Host       string `json:"host,omitempty"`
	GoVersion  string `json:"goversion,omitempty"`
	// Note carries a caveat about the run's validity, set with -note —
	// e.g. scripts/bench.sh annotates multi-worker benchmarks recorded on
	// a single-core host, whose parallel numbers measure coordination
	// overhead only.
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Raw        []string    `json:"raw"` // verbatim lines, benchstat input
}

// Delta compares one benchmark between the baseline and current runs.
// Negative percentages are improvements (less time / fewer allocations).
type Delta struct {
	Name         string  `json:"name"`
	NsPerOpPct   float64 `json:"ns_per_op_pct"`
	AllocsOpPct  float64 `json:"allocs_per_op_pct"`
	BytesPerOpPc float64 `json:"bytes_per_op_pct"`
}

// Document is the top-level BENCH_*.json shape. A first recording has
// only "current"; later recordings carry the prior run as "baseline".
type Document struct {
	Schema   string  `json:"schema"`
	Baseline *Run    `json:"baseline,omitempty"`
	Current  *Run    `json:"current"`
	Deltas   []Delta `json:"deltas,omitempty"`
}

func main() {
	label := flag.String("label", "", "label for this run (e.g. git commit)")
	baseline := flag.String("baseline", "", "prior BENCH_*.json whose current run becomes this document's baseline")
	note := flag.String("note", "", "caveat annotation recorded with the run (e.g. single-core host)")
	out := flag.String("o", "", "output file (default stdout)")
	printProcs := flag.Bool("print-gomaxprocs", false, "print the effective GOMAXPROCS (honouring the env var) and exit — used by scripts/bench.sh's single-core guard")
	flag.Parse()

	if *printProcs {
		fmt.Println(runtime.GOMAXPROCS(0))
		return
	}

	cur, err := parseRun(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	cur.Label = *label
	cur.Note = *note
	cur.Date = time.Now().UTC().Format(time.RFC3339)
	cur.GoMaxProcs = runtime.GOMAXPROCS(0)
	cur.NumCPU = runtime.NumCPU()
	cur.GoVersion = runtime.Version()
	if host, err := os.Hostname(); err == nil {
		cur.Host = host
	}

	doc := &Document{Schema: "allsatpre-bench/v1", Current: cur}
	if *baseline != "" {
		base, err := loadRun(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		doc.Baseline = base
		doc.Deltas = deltas(base, cur)
	}

	var w *os.File = os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseRun reads `go test -bench` output and collects header metadata and
// benchmark result lines.
func parseRun(f *os.File) (*Run, error) {
	run := &Run{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			run.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			run.Benchmarks = append(run.Benchmarks, b)
			run.Raw = append(run.Raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(run.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return run, nil
}

// parseBenchLine parses "BenchmarkX/sub-8  10  123 ns/op  4 B/op ...".
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(fields[0], "Benchmark"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// loadRun reads a prior BENCH_*.json (or a bare Run document) and returns
// the run to use as baseline: a Document's "current", else the Run itself.
func loadRun(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err == nil && doc.Current != nil {
		return doc.Current, nil
	}
	var run Run
	if err := json.Unmarshal(data, &run); err != nil {
		return nil, fmt.Errorf("%s: not a BENCH document: %w", path, err)
	}
	return &run, nil
}

// deltas pairs baseline and current benchmarks by name. When a run holds
// several samples of the same name (-count > 1), the minimum of each
// metric is compared — the usual "best of N" noise reduction.
func deltas(base, cur *Run) []Delta {
	bm := collect(base)
	var out []Delta
	seen := map[string]bool{}
	for _, b := range cur.Benchmarks {
		if seen[b.Name] {
			continue
		}
		seen[b.Name] = true
		old, ok := bm[b.Name]
		if !ok {
			continue
		}
		curMin := collect(cur)[b.Name]
		out = append(out, Delta{
			Name:         b.Name,
			NsPerOpPct:   pct(old["ns/op"], curMin["ns/op"]),
			AllocsOpPct:  pct(old["allocs/op"], curMin["allocs/op"]),
			BytesPerOpPc: pct(old["B/op"], curMin["B/op"]),
		})
	}
	return out
}

// collect folds a run's samples into per-name minima of each metric.
func collect(r *Run) map[string]map[string]float64 {
	m := map[string]map[string]float64{}
	for _, b := range r.Benchmarks {
		cur, ok := m[b.Name]
		if !ok {
			cur = map[string]float64{}
			m[b.Name] = cur
		}
		for unit, v := range b.Metrics {
			if old, ok := cur[unit]; !ok || v < old {
				cur[unit] = v
			}
		}
	}
	return m
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}
