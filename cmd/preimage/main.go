// Command preimage computes the one-step preimage of a target state set
// of a sequential circuit.
//
// Usage:
//
//	preimage [-engine success|blocking|lifting|disjoint|bdd] [-inputs] [-cubes] \
//	         circuit.bench pattern [pattern ...]
//
// Each pattern is a "01X" string with one character per latch (declaration
// order). The circuit may also name a built-in generator, e.g.
// "counter:8", "shift:6", "lfsr:8", "johnson:6", "gray:5", "traffic",
// "slike:SEED,GATES,LATCHES,INPUTS".
package main

import (
	"flag"
	"fmt"
	"os"

	"allsatpre"
	"allsatpre/internal/genspec"
)

func main() {
	engine := flag.String("engine", "success", "engine: success | blocking | lifting | disjoint | bdd")
	withInputs := flag.Bool("inputs", false, "also report witness input assignments")
	showCubes := flag.Bool("cubes", false, "print the preimage cubes")
	kstep := flag.Int("kstep", 0, "with k > 0, enumerate all states reaching the target within k steps (one unrolled all-SAT call; SAT engines only)")
	bf := genspec.AddBudgetFlags(flag.CommandLine)
	incremental := genspec.AddIncrementalFlag(flag.CommandLine)
	simplifyFlag := genspec.AddSimplifyFlag(flag.CommandLine)
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: preimage [flags] circuit.bench|spec pattern [pattern ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	c, err := genspec.Resolve(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	eng, err := genspec.Engine(*engine)
	if err != nil {
		fatal(err)
	}

	smode, err := genspec.SimplifyMode(*simplifyFlag)
	if err != nil {
		fatal(err)
	}

	reg := bf.StatsRegistry("preimage")
	opts := allsatpre.Options{Engine: eng, Budget: bf.Budget(), Parallel: bf.Workers,
		Incremental: *incremental, Simplify: smode, Stats: reg}
	var res *allsatpre.Result
	if *kstep > 0 {
		res, err = allsatpre.KStepPreimage(c, opts, *kstep, flag.Args()[1:]...)
	} else {
		opts.WithInputs = *withInputs
		res, err = allsatpre.Preimage(c, opts, flag.Args()[1:]...)
	}
	if err != nil {
		fatal(err)
	}
	st := c.Stats()
	fmt.Printf("circuit: %s\n", st)
	fmt.Printf("engine: %s\n", eng)
	genspec.Truncated(os.Stdout, res.Aborted, res.AbortReason)
	if res.Aborted {
		fmt.Printf("preimage states (partial): %s\n", res.Count)
	} else {
		fmt.Printf("preimage states: %s\n", res.Count)
	}
	fmt.Printf("cubes: %d\n", res.States.Len())
	if res.Stats.Decisions > 0 || res.Stats.Conflicts > 0 {
		fmt.Printf("decisions: %d  conflicts: %d  solutions: %d\n",
			res.Stats.Decisions, res.Stats.Conflicts, res.Stats.Solutions)
	}
	if res.Stats.CacheLookups > 0 {
		fmt.Printf("memo: %d/%d hits\n", res.Stats.CacheHits, res.Stats.CacheLookups)
	}
	fmt.Printf("bdd nodes: %d\n", res.BDDNodes)
	if *showCubes {
		fmt.Println("state cubes (latch order:", latchNames(c), "):")
		for _, cb := range res.States.Cubes() {
			fmt.Println(" ", cb)
		}
	}
	if *withInputs && res.Pairs != nil {
		fmt.Printf("witness (state,input) cubes: %d\n", res.Pairs.Len())
		if *showCubes {
			for _, cb := range res.Pairs.Cubes() {
				fmt.Println(" ", cb)
			}
		}
	}
	bf.Report(os.Stdout, reg)
}

func latchNames(c *allsatpre.Circuit) string {
	s := ""
	for i, gi := range c.Latches {
		if i > 0 {
			s += ","
		}
		s += c.Gates[gi].Name
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "preimage:", err)
	os.Exit(1)
}
