// Command bmc runs bounded model checking: it searches for an input
// sequence of length ≤ bound driving the circuit from an initial state
// set into a bad state set, by time-frame expansion with incremental SAT.
//
// Usage:
//
//	bmc [-bound N] circuit.bench|spec INIT-PATTERN BAD-PATTERN...
//
// Exit status: 0 counterexample found, 3 none within the bound.
package main

import (
	"flag"
	"fmt"
	"os"

	"allsatpre"
	"allsatpre/internal/genspec"
	"allsatpre/internal/stats"
)

func main() {
	bound := flag.Int("bound", 20, "maximum counterexample length")
	bf := genspec.AddBudgetFlags(flag.CommandLine)
	simplifyFlag := genspec.AddSimplifyFlag(flag.CommandLine)
	flag.Parse()
	if flag.NArg() < 3 {
		fmt.Fprintln(os.Stderr, "usage: bmc [flags] circuit INIT-PATTERN BAD-PATTERN [BAD-PATTERN ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	c, err := genspec.Resolve(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	init, err := allsatpre.Target(c, flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	bad, err := allsatpre.Target(c, flag.Args()[2:]...)
	if err != nil {
		fatal(err)
	}
	smode, err := genspec.SimplifyMode(*simplifyFlag)
	if err != nil {
		fatal(err)
	}
	t := stats.StartTimer()
	res, err := allsatpre.BMCOpts(c, init, bad, *bound,
		allsatpre.BMCOptions{Budget: bf.Budget(), Workers: bf.Workers, Simplify: smode})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit: %s\n", c.Stats())
	if res.Aborted {
		genspec.Truncated(os.Stdout, true, res.AbortReason)
		certified := "no depth certified counterexample-free"
		if res.Depth >= 0 {
			certified = fmt.Sprintf("depths 0..%d certified counterexample-free", res.Depth)
		}
		fmt.Printf("ABORTED (%s): %s, bound %d not reached (%d solves, %v)\n",
			res.AbortReason, certified, *bound, res.Solves, t.Elapsed())
		os.Exit(3)
	}
	if !res.Reachable {
		fmt.Printf("NO counterexample within bound %d (%d solves, %v)\n",
			*bound, res.Solves, t.Elapsed())
		os.Exit(3)
	}
	fmt.Printf("COUNTEREXAMPLE of length %d (%d solves, %v)\n", res.Depth, res.Solves, t.Elapsed())
	for i, st := range res.Trace.States {
		fmt.Printf("  state %2d: %s\n", i, bits(st))
		if i < len(res.Trace.Inputs) {
			fmt.Printf("  input %2d: %s\n", i, bits(res.Trace.Inputs[i]))
		}
	}
}

func bits(b []bool) string {
	out := make([]byte, len(b))
	for i, v := range b {
		if v {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bmc:", err)
	os.Exit(1)
}
