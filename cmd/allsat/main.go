// Command allsat enumerates all solutions of a DIMACS CNF file, projected
// onto a variable set, using any of the four all-SAT engines.
//
// Usage:
//
//	allsat [-engine success|blocking|lifting|disjoint] [-proj 1,2,5] [-cubes] file.cnf
//
// The projection defaults to a "c proj ..." comment line in the file, or
// all variables. With "-" as the file, stdin is read.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"allsatpre"
	"allsatpre/internal/cnf"
	"allsatpre/internal/genspec"
)

func main() {
	engine := flag.String("engine", "success", "engine: success | blocking | lifting | disjoint")
	projFlag := flag.String("proj", "", "comma-separated 1-based projection variables")
	forgetFlag := flag.String("forget", "", "comma-separated 1-based variables to quantify out (projection = all others); the result is ∃forget.F as a cube cover")
	showCubes := flag.Bool("cubes", false, "print the solution cubes")
	pre := flag.Bool("pre", false, "preprocess (subsumption, strengthening) before enumerating")
	simplifyFlag := genspec.AddSimplifyFlag(flag.CommandLine)
	bf := genspec.AddBudgetFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: allsat [flags] file.cnf|-")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var in io.Reader
	if flag.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	var eng allsatpre.Engine
	switch *engine {
	case "success":
		eng = allsatpre.EngineSuccessDriven
	case "blocking":
		eng = allsatpre.EngineBlocking
	case "lifting":
		eng = allsatpre.EngineLifting
	case "disjoint":
		eng = allsatpre.EngineDisjoint
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	parseVars := func(s string) []int {
		var out []int
		for _, tok := range strings.Split(s, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fatal(fmt.Errorf("bad variable %q", tok))
			}
			out = append(out, d)
		}
		return out
	}
	var proj []int
	if *projFlag != "" {
		proj = parseVars(*projFlag)
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	if *forgetFlag != "" {
		if proj != nil {
			fatal(fmt.Errorf("-proj and -forget are mutually exclusive"))
		}
		// Projection = every variable not forgotten; needs the variable
		// count, so parse once up front.
		f, _, err := cnf.ParseDimacs(bytes.NewReader(data))
		if err != nil {
			fatal(err)
		}
		drop := map[int]bool{}
		for _, d := range parseVars(*forgetFlag) {
			drop[d] = true
		}
		for v := 1; v <= f.NumVars; v++ {
			if !drop[v] {
				proj = append(proj, v)
			}
		}
	}

	smode, err := genspec.SimplifyMode(*simplifyFlag)
	if err != nil {
		fatal(err)
	}

	reg := bf.StatsRegistry("allsat")
	res, err := allsatpre.EnumerateDimacsOpts(bytes.NewReader(data), allsatpre.DimacsOptions{
		Engine: eng, Proj: proj, Preprocess: *pre, Simplify: smode,
		Budget: bf.Budget(), MaxCubes: int(bf.MaxCubes), Workers: bf.Workers, Stats: reg,
	})
	if err != nil {
		fatal(err)
	}
	genspec.Truncated(os.Stdout, res.Aborted, res.Reason)
	if res.Aborted {
		fmt.Printf("solutions (projected minterms, partial): %s\n", res.Count)
	} else {
		fmt.Printf("solutions (projected minterms): %s\n", res.Count)
	}
	fmt.Printf("cubes: %d\n", res.Cover.Len())
	fmt.Printf("decisions: %d  propagations: %d  conflicts: %d\n",
		res.Stats.Decisions, res.Stats.Propagations, res.Stats.Conflicts)
	if res.Stats.CacheLookups > 0 {
		fmt.Printf("memo: %d/%d hits\n", res.Stats.CacheHits, res.Stats.CacheLookups)
	}
	if *showCubes {
		for _, c := range res.Cover.Cubes() {
			fmt.Println(c)
		}
	}
	bf.Report(os.Stdout, reg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "allsat:", err)
	os.Exit(1)
}
