module allsatpre

go 1.22
