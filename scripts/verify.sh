#!/bin/sh
# Tier-1 verification: build, vet, full tests, a race-detector pass over
# the short tests, and a one-iteration benchmark smoke (catches bench
# harness rot without paying for a real measurement — scripts/bench.sh
# does those). Run from the repository root.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race -short ./...
# The parallel-enumeration determinism suite must hold regardless of how
# the Go scheduler interleaves workers: exercise it both pinned to one OS
# thread and with real preemption under the race detector.
GOMAXPROCS=1 go test -run 'TestDeterministic|TestAbortSoundness' ./internal/preimage/
GOMAXPROCS=4 go test -race -run 'TestDeterministic|TestAbortSoundness' ./internal/preimage/
# The simplify equivalence suite is the CI gate for the preprocessor: if
# -simplify changes any engine's enumerated state set on the determinism
# circuits, this fails the build. Run it pinned and preempted like the
# sweep above.
GOMAXPROCS=1 go test -run 'TestSimplify' ./internal/preimage/
GOMAXPROCS=4 go test -race -run 'TestSimplify' ./internal/preimage/
go test -run '^$' -bench 'Table|ParallelEnumerate|ReachIncremental|Simplify' -benchtime=1x -benchmem .
# Loadbench smoke: one request per mode through BenchmarkServerLoad
# (scripts/loadbench.sh runs the real measurement). Catches harness rot
# in the pooled-vs-classic server benchmark without paying for 64x2 runs.
go test -run '^$' -bench ServerLoad -benchtime=1x -benchmem ./internal/server/

# Service smoke test: boot cmd/serve on a random port, stream a small
# enumeration, create/step/evict a session, and drain on SIGTERM. This
# exercises the daemon wiring (listener, mux, shutdown order) that the
# package's httptest-based suite cannot see.
SERVE_DIR=$(mktemp -d)
trap 'kill $SERVE_PID 2>/dev/null || true; rm -rf "$SERVE_DIR"' EXIT
go build -o "$SERVE_DIR/serve" ./cmd/serve
"$SERVE_DIR/serve" -addr 127.0.0.1:0 -max-sessions 1 > "$SERVE_DIR/log" &
SERVE_PID=$!
for i in $(seq 1 50); do
    ADDR=$(sed -n 's/^serve: listening on //p' "$SERVE_DIR/log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ]
printf 'p cnf 3 2\n1 2 0\n-1 3 0\n' > "$SERVE_DIR/f.cnf"
curl -sfN --data-binary @"$SERVE_DIR/f.cnf" "http://$ADDR/v1/enumerate?engine=disjoint" > "$SERVE_DIR/stream"
grep -q '"type":"header"' "$SERVE_DIR/stream"
grep -q '"type":"cube"' "$SERVE_DIR/stream"
grep -q '"truncated":false' "$SERVE_DIR/stream"
go run ./cmd/benchgen counter:3 > "$SERVE_DIR/counter.bench"
BENCH=$(awk '{printf "%s\\n", $0}' "$SERVE_DIR/counter.bench" | sed 's/"/\\"/g')
curl -sf "http://$ADDR/v1/sessions" \
    -d "{\"name\":\"smoke\",\"bench\":\"$BENCH\",\"target\":[\"000\"]}" | grep -q '"id":"smoke"'
curl -sf -XPOST "http://$ADDR/v1/sessions/smoke/step" | grep -q '"new_states":"1"'
# max-sessions is 1: a second session must evict the first.
curl -sf "http://$ADDR/v1/sessions" \
    -d "{\"name\":\"second\",\"bench\":\"$BENCH\",\"target\":[\"111\"]}" | grep -q '"evicted":\["smoke"\]'
test "$(curl -s -o /dev/null -w '%{http_code}' -XPOST "http://$ADDR/v1/sessions/smoke/step")" = 404
curl -sf "http://$ADDR/debug/stats" | grep -q 'server.requests'
kill -TERM $SERVE_PID
wait $SERVE_PID
grep -q 'serve: drained' "$SERVE_DIR/log"
