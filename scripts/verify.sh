#!/bin/sh
# Tier-1 verification: build, vet, full tests, a race-detector pass over
# the short tests, and a one-iteration benchmark smoke (catches bench
# harness rot without paying for a real measurement — scripts/bench.sh
# does those). Run from the repository root.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race -short ./...
# The parallel-enumeration determinism suite must hold regardless of how
# the Go scheduler interleaves workers: exercise it both pinned to one OS
# thread and with real preemption under the race detector.
GOMAXPROCS=1 go test -run 'TestDeterministic|TestAbortSoundness' ./internal/preimage/
GOMAXPROCS=4 go test -race -run 'TestDeterministic|TestAbortSoundness' ./internal/preimage/
# The simplify equivalence suite is the CI gate for the preprocessor: if
# -simplify changes any engine's enumerated state set on the determinism
# circuits, this fails the build. Run it pinned and preempted like the
# sweep above.
GOMAXPROCS=1 go test -run 'TestSimplify' ./internal/preimage/
GOMAXPROCS=4 go test -race -run 'TestSimplify' ./internal/preimage/
go test -run '^$' -bench 'Table|ParallelEnumerate|ReachIncremental|Simplify' -benchtime=1x -benchmem .
