#!/bin/sh
# scripts/loadbench.sh — record the serving-layer load benchmark.
#
# Runs BenchmarkServerLoad (internal/server): >=64 complete HTTP
# enumerations per mode, fired from >=8 concurrent client goroutines,
# pooled runtime vs classic build-from-scratch execution. Converts the
# output into a BENCH_*.json document via cmd/benchjson and prints the
# pooled/classic throughput and allocation ratios.
#
# The PR gate for the pooled runtime is: pooled >=1.3x requests/sec OR
# <=0.7x bytes allocated per request vs classic. The script computes both
# and exits 3 if neither holds (the recording is still written, so a
# failed gate leaves evidence).
#
# Usage:
#   scripts/loadbench.sh [out.json]        # default out: BENCH_7.json
#
# Environment knobs:
#   LOAD_REQUESTS   requests per mode, -benchtime Nx   (default: 64)
#   LOAD_COUNT      -count                             (default: 2)
#   BENCH_BASELINE  prior BENCH_*.json embedded as "baseline"
#   BENCH_ALLOW_SINGLE_CORE=1  record on a single-core host anyway
#                   (loud warning + the JSON is annotated); the client
#                   goroutines still overlap there — requests queue at
#                   admission and the warm pool is contended — but the
#                   numbers measure pipelining, not parallel speedup.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_7.json}
REQUESTS=${LOAD_REQUESTS:-64}
COUNT=${LOAD_COUNT:-2}
LABEL=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

if [ "$REQUESTS" -lt 64 ]; then
    echo "loadbench.sh: LOAD_REQUESTS=$REQUESTS < 64; the recording needs >=64 requests per mode" >&2
    exit 2
fi

EFFECTIVE_PROCS=$(GOMAXPROCS=${GOMAXPROCS:-} go run ./cmd/benchjson -print-gomaxprocs 2>/dev/null || echo 0)
NOTE=""
if [ "$EFFECTIVE_PROCS" -le 1 ]; then
    if [ "${BENCH_ALLOW_SINGLE_CORE:-0}" != "1" ]; then
        echo "loadbench.sh: REFUSING to record the concurrent-load benchmark with GOMAXPROCS=$EFFECTIVE_PROCS." >&2
        echo "loadbench.sh: set BENCH_ALLOW_SINGLE_CORE=1 to record anyway (the JSON will be annotated)." >&2
        exit 2
    fi
    NOTE="single-core host (GOMAXPROCS=$EFFECTIVE_PROCS): the 8 client goroutines overlap via queuing, not parallel execution; ratios measure per-request cost, not multi-core throughput"
    echo "loadbench.sh: WARNING: $NOTE" >&2
fi

TMP=$(mktemp loadbench.XXXXXX.txt)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench ServerLoad -benchmem \
    -benchtime "${REQUESTS}x" -count "$COUNT" ./internal/server/ | tee "$TMP"

set -- -label "$LABEL" -o "$OUT"
if [ -n "${BENCH_BASELINE:-}" ]; then
    set -- "$@" -baseline "$BENCH_BASELINE"
fi
if [ -n "$NOTE" ]; then
    set -- "$@" -note "$NOTE"
fi
go run ./cmd/benchjson "$@" < "$TMP"
echo "wrote $OUT"

# Gate: mean pooled vs mean classic, from the raw bench lines.
awk '
/^BenchmarkServerLoad\/pooled/  { pn += $3; pb += $5; pc++ }
/^BenchmarkServerLoad\/classic/ { cn += $3; cb += $5; cc++ }
END {
    if (pc == 0 || cc == 0) { print "loadbench.sh: missing bench lines"; exit 3 }
    tput = (cn / cc) / (pn / pc)      # classic ns / pooled ns = pooled speedup
    alloc = (pb / pc) / (cb / cc)     # pooled bytes / classic bytes
    printf "loadbench.sh: pooled throughput %.2fx classic, %.2fx bytes/request\n", tput, alloc
    if (tput >= 1.3 || alloc <= 0.7) { print "loadbench.sh: gate PASS (>=1.3x throughput or <=0.7x bytes/request)" }
    else { print "loadbench.sh: gate FAIL (need >=1.3x throughput or <=0.7x bytes/request)"; exit 3 }
}' "$TMP"
