#!/bin/sh
# scripts/bench.sh — record one point of the performance trajectory.
#
# Runs the root Table benchmarks (all preimage engines: success-driven,
# blocking, lifting, BDD) plus the ParallelEnumerate worker sweep
# (1/2/4/8 pool workers — the -workers column of the trajectory) with
# -benchmem and converts the output into a BENCH_*.json document via
# cmd/benchjson. The JSON keeps the raw bench lines verbatim, so it
# stays benchstat-compatible (see cmd/benchjson).
#
# Usage:
#   scripts/bench.sh [out.json]          # default out: BENCH_1.json
#
# Environment knobs:
#   BENCH_PATTERN   -bench regex            (default: Table|ParallelEnumerate|ReachIncremental)
#   BENCH_TIME      -benchtime              (default: 2x)
#   BENCH_COUNT     -count                  (default: 2)
#   BENCH_BASELINE  prior BENCH_*.json embedded as "baseline" for deltas
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_1.json}
PATTERN=${BENCH_PATTERN:-'Table|ParallelEnumerate|ReachIncremental'}
BENCHTIME=${BENCH_TIME:-2x}
COUNT=${BENCH_COUNT:-2}
LABEL=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

TMP=$(mktemp bench.XXXXXX.txt)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$TMP"

if [ -n "${BENCH_BASELINE:-}" ]; then
    go run ./cmd/benchjson -label "$LABEL" -baseline "$BENCH_BASELINE" -o "$OUT" < "$TMP"
else
    go run ./cmd/benchjson -label "$LABEL" -o "$OUT" < "$TMP"
fi
echo "wrote $OUT"
