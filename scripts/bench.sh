#!/bin/sh
# scripts/bench.sh — record one point of the performance trajectory.
#
# Runs the root Table benchmarks (all preimage engines: success-driven,
# blocking, lifting, BDD) plus the ParallelEnumerate worker sweep
# (1/2/4/8 pool workers — the -workers column of the trajectory) with
# -benchmem and converts the output into a BENCH_*.json document via
# cmd/benchjson. The JSON keeps the raw bench lines verbatim, so it
# stays benchstat-compatible (see cmd/benchjson).
#
# Usage:
#   scripts/bench.sh [out.json]          # default out: BENCH_1.json
#
# Environment knobs:
#   BENCH_PATTERN   -bench regex            (default: Table|ParallelEnumerate|ReachIncremental)
#   BENCH_TIME      -benchtime              (default: 2x)
#   BENCH_COUNT     -count                  (default: 2)
#   BENCH_BASELINE  prior BENCH_*.json embedded as "baseline" for deltas
#   BENCH_ALLOW_SINGLE_CORE=1  record multi-worker benchmarks on a
#                   single-core host anyway (loud warning + the JSON is
#                   annotated); without it the run refuses, because
#                   -workers>1 numbers at one scheduler slot measure
#                   coordination overhead only, not parallel speedup
#                   (the BENCH_2 lesson).
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_1.json}
PATTERN=${BENCH_PATTERN:-'Table|ParallelEnumerate|ReachIncremental'}
BENCHTIME=${BENCH_TIME:-2x}
COUNT=${BENCH_COUNT:-2}
LABEL=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

# Single-core guard: multi-worker benchmarks (the ParallelEnumerate sweep
# and anything matching -workers/Parallel) are meaningless as speedup
# measurements when only one scheduler slot exists.
EFFECTIVE_PROCS=$(GOMAXPROCS=${GOMAXPROCS:-} go run ./cmd/benchjson -print-gomaxprocs 2>/dev/null || echo 0)
NOTE=""
case "$PATTERN" in
*ParallelEnumerate* | *Parallel* | *workers*)
    if [ "$EFFECTIVE_PROCS" -le 1 ]; then
        if [ "${BENCH_ALLOW_SINGLE_CORE:-0}" != "1" ]; then
            echo "bench.sh: REFUSING to record multi-worker benchmarks with GOMAXPROCS=$EFFECTIVE_PROCS." >&2
            echo "bench.sh: parallel numbers on a single-core host measure coordination overhead only." >&2
            echo "bench.sh: set BENCH_ALLOW_SINGLE_CORE=1 to record anyway (the JSON will be annotated)," >&2
            echo "bench.sh: or narrow BENCH_PATTERN to the sequential benchmarks." >&2
            exit 2
        fi
        NOTE="single-core host (GOMAXPROCS=$EFFECTIVE_PROCS): multi-worker benchmarks measure coordination overhead, not parallel speedup"
        echo "bench.sh: WARNING: $NOTE" >&2
    fi
    ;;
esac

TMP=$(mktemp bench.XXXXXX.txt)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$TMP"

set -- -label "$LABEL" -o "$OUT"
if [ -n "${BENCH_BASELINE:-}" ]; then
    set -- "$@" -baseline "$BENCH_BASELINE"
fi
if [ -n "$NOTE" ]; then
    set -- "$@" -note "$NOTE"
fi
go run ./cmd/benchjson "$@" < "$TMP"
echo "wrote $OUT"
