package allsatpre_test

import (
	"fmt"
	"log"
	"strings"

	"allsatpre"
)

// The basic flow: load a circuit, compute a preimage, read the answer.
func Example() {
	c, err := allsatpre.LoadBench("testdata/s27.bench")
	if err != nil {
		log.Fatal(err)
	}
	res, err := allsatpre.Preimage(c, allsatpre.Options{}, "1XX")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("states:", res.Count)
	// Output:
	// states: 8
}

// Preimage of a single counter state: always the two predecessors.
func ExamplePreimage() {
	c := allsatpre.NewCounter(4, true, false)
	res, err := allsatpre.Preimage(c, allsatpre.Options{}, "0110") // state 6
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count:", res.Count)
	for _, cb := range res.States.Cubes() {
		fmt.Println("cube:", cb)
	}
	// Output:
	// count: 2
	// cube: 1010
	// cube: 0110
}

// Backward reachability to the fixpoint.
func ExampleBackwardReach() {
	c := allsatpre.NewJohnson(4)
	r, err := allsatpre.BackwardReach(c, allsatpre.Options{}, -1, "1111")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("states that can reach 1111:", r.AllCount)
	fmt.Println("fixpoint:", r.Fixpoint)
	// Output:
	// states that can reach 1111: 8
	// fixpoint: true
}

// Unbounded safety checking with a counterexample trace.
func ExampleCheckReachable() {
	c := allsatpre.NewCounter(4, true, false)
	init, _ := allsatpre.Target(c, "0000")
	bad, _ := allsatpre.Target(c, "1100")
	res, err := allsatpre.CheckReachable(c, init, bad, -1, allsatpre.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reachable:", res.Reachable, "in", res.Steps, "steps")
	// Output:
	// reachable: true in 3 steps
}

// Projected all-solutions enumeration over a raw DIMACS formula.
func ExampleEnumerateDimacs() {
	const f = "c proj 1 2\np cnf 3 2\n1 2 0\n-1 3 0\n"
	res, err := allsatpre.EnumerateDimacs(strings.NewReader(f),
		allsatpre.EngineSuccessDriven, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("projected solutions:", res.Count)
	// Output:
	// projected solutions: 3
}

// Bounded model checking finds the distance of a bug.
func ExampleBMC() {
	c := allsatpre.NewCounter(4, true, false)
	init, _ := allsatpre.Target(c, "0000")
	bad, _ := allsatpre.Target(c, "0101")
	res, err := allsatpre.BMC(c, init, bad, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("depth:", res.Depth)
	// Output:
	// depth: 10
}

// Forward image: the dual direction.
func ExampleImage() {
	c := allsatpre.NewCounter(3, true, false)
	res, err := allsatpre.Image(c, allsatpre.Options{}, "000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("successors of 0:", res.Count)
	// Output:
	// successors of 0: 2
}
