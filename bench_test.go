package allsatpre

// Benchmark harness: one Benchmark per table/figure of the evaluation
// (DESIGN.md §4). Sub-benchmarks are named <workload>/<engine> so
//
//	go test -bench=Table1 -benchmem
//
// regenerates the corresponding table's measurements; cmd/experiments
// prints the same data as formatted tables with derived columns.

import (
	"fmt"
	"testing"

	"allsatpre/internal/allsat"
	"allsatpre/internal/circuit"
	"allsatpre/internal/core"
	"allsatpre/internal/cube"
	"allsatpre/internal/experiments"
	"allsatpre/internal/gen"
	"allsatpre/internal/preimage"
	"allsatpre/internal/simplify"
	"allsatpre/internal/trans"
)

// cappedOpts applies the harness's blocking-cube cap (see
// experiments.BlockingCubeCap) so the baselines' blowup on the largest
// workloads does not stall the benchmark run; capped iterations measure
// "time to the cap", mirroring timeout rows in the paper-style tables.
func cappedOpts(eng preimage.Engine) preimage.Options {
	opts := preimage.Options{Engine: eng}
	if eng == preimage.EngineBlocking || eng == preimage.EngineLifting {
		opts.AllSAT = allsat.Options{MaxCubes: experiments.BlockingCubeCap}
	}
	return opts
}

// benchTarget mirrors the experiment harness's target choice: the cube
// around a provably producible next state with every fifth position free.
func benchTarget(c *circuit.Circuit) *cube.Cover {
	n := len(c.Latches)
	sim, err := circuit.NewSimulator(c)
	if err != nil {
		panic(err)
	}
	st := make([]bool, n)
	in := make([]bool, len(c.Inputs))
	h := uint32(2166136261)
	for _, ch := range c.Name {
		h = (h ^ uint32(ch)) * 16777619
	}
	for i := range st {
		h = h*1664525 + 1013904223
		st[i] = h>>16&1 == 1
	}
	for i := range in {
		h = h*1664525 + 1013904223
		in[i] = h>>16&1 == 1
	}
	_, next := sim.Step(st, in)
	pat := make([]byte, n)
	fixed := 0
	for i := range pat {
		if i%5 == 4 {
			pat[i] = 'X'
			continue
		}
		if next[i] {
			pat[i] = '1'
		} else {
			pat[i] = '0'
		}
		fixed++
	}
	if fixed == 0 {
		pat[0] = '0'
		if next[0] {
			pat[0] = '1'
		}
	}
	return trans.TargetFromPatterns(n, string(pat))
}

func benchPreimage(b *testing.B, c *circuit.Circuit, target *cube.Cover, opts preimage.Options) {
	b.Helper()
	b.ReportAllocs()
	var states int64
	for i := 0; i < b.N; i++ {
		r, err := preimage.Compute(c, target, opts)
		if err != nil {
			b.Fatal(err)
		}
		states = r.Count.Int64()
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkTable1 — single-step preimage across the four SAT engines
// (blocking, lifting, disjoint, success-driven) on the benchmark suite.
func BenchmarkTable1(b *testing.B) {
	engines := []preimage.Engine{
		preimage.EngineBlocking, preimage.EngineLifting, preimage.EngineDisjoint,
		preimage.EngineSuccessDriven,
	}
	for _, nc := range gen.Suite() {
		target := benchTarget(nc.Circuit)
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/%s", nc.Name, eng), func(b *testing.B) {
				benchPreimage(b, nc.Circuit, target, cappedOpts(eng))
			})
		}
	}
}

// BenchmarkTable2 — the success-driven SAT engine vs the BDD
// relational-product engine, including the BDD-hostile multiplier cores.
func BenchmarkTable2(b *testing.B) {
	suite := append(gen.Suite(),
		gen.NamedCircuit{Name: "mult6", Circuit: gen.MultCore(6)},
		gen.NamedCircuit{Name: "mult8", Circuit: gen.MultCore(8)},
	)
	for _, nc := range suite {
		target := benchTarget(nc.Circuit)
		for _, eng := range []preimage.Engine{preimage.EngineSuccessDriven, preimage.EngineBDD} {
			b.Run(fmt.Sprintf("%s/%s", nc.Name, eng), func(b *testing.B) {
				benchPreimage(b, nc.Circuit, target, preimage.Options{Engine: eng})
			})
		}
	}
}

// BenchmarkTable7 — clause-database growth shootout: the four SAT
// engines with the peak added-clause count (blocking clauses + learnt
// high-water mark) reported alongside time, so the recorded baselines
// carry the memory story of the blocking-free disjoint engine.
func BenchmarkTable7(b *testing.B) {
	engines := []preimage.Engine{
		preimage.EngineBlocking, preimage.EngineLifting, preimage.EngineDisjoint,
		preimage.EngineSuccessDriven,
	}
	for _, nc := range gen.Suite() {
		target := benchTarget(nc.Circuit)
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/%s", nc.Name, eng), func(b *testing.B) {
				b.ReportAllocs()
				var peak, blocking, learntBytes uint64
				for i := 0; i < b.N; i++ {
					r, err := preimage.Compute(nc.Circuit, target, cappedOpts(eng))
					if err != nil {
						b.Fatal(err)
					}
					peak = r.Stats.BlockingClauses + r.Stats.PeakLearnts
					blocking = r.Stats.BlockingClauses
					learntBytes = r.Stats.PeakLearntBytes
				}
				b.ReportMetric(float64(peak), "peak-clauses")
				b.ReportMetric(float64(blocking), "blocking")
				b.ReportMetric(float64(learntBytes)/1024, "learnt-kb")
			})
		}
	}
}

// BenchmarkTable3 — multi-step backward reachability (step-capped).
func BenchmarkTable3(b *testing.B) {
	suite := []gen.NamedCircuit{
		{Name: "counter8", Circuit: gen.Counter(8, true, false)},
		{Name: "johnson8", Circuit: gen.Johnson(8)},
		{Name: "traffic", Circuit: gen.TrafficLight()},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
	}
	engines := []preimage.Engine{
		preimage.EngineSuccessDriven, preimage.EngineBlocking, preimage.EngineBDD,
	}
	for _, nc := range suite {
		target := benchTarget(nc.Circuit)
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/%s", nc.Name, eng), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := preimage.Reach(nc.Circuit, target, 6, preimage.Options{Engine: eng}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReachIncremental — fresh vs incremental multi-step backward
// reachability on the Table 3 suite (success-driven engine, 6-step cap).
// The fresh path re-encodes the circuit and rebuilds a solver set and BDD
// manager every step; the incremental path (internal/incr) keeps one
// session alive and retargets it with activation literals, retaining
// learned clauses across steps. Results are bit-identical (see
// internal/preimage's incremental equivalence suite), so the delta is
// pure re-encoding plus lost-learning cost.
func BenchmarkReachIncremental(b *testing.B) {
	suite := []gen.NamedCircuit{
		{Name: "counter8", Circuit: gen.Counter(8, true, false)},
		{Name: "johnson8", Circuit: gen.Johnson(8)},
		{Name: "traffic", Circuit: gen.TrafficLight()},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
	}
	for _, nc := range suite {
		target := benchTarget(nc.Circuit)
		for _, incr := range []bool{false, true} {
			mode := "fresh"
			if incr {
				mode = "incremental"
			}
			b.Run(fmt.Sprintf("%s/%s", nc.Name, mode), func(b *testing.B) {
				b.ReportAllocs()
				var steps int
				for i := 0; i < b.N; i++ {
					r, err := preimage.Reach(nc.Circuit, target, 6,
						preimage.Options{Engine: preimage.EngineSuccessDriven, Incremental: incr})
					if err != nil {
						b.Fatal(err)
					}
					steps = r.Steps
				}
				b.ReportMetric(float64(steps), "steps")
			})
		}
	}
}

// BenchmarkFig1 — runtime vs solution count: target-size sweep on a
// 16-bit counter (k free bits → ~2^k solutions), blocking vs the
// success-driven solver.
func BenchmarkFig1(b *testing.B) {
	const width = 16
	c := gen.Counter(width, true, false)
	for _, k := range []int{2, 4, 6, 8, 10} {
		pat := make([]byte, width)
		for i := range pat {
			switch {
			case i < k:
				pat[i] = 'X'
			case i%2 == 0:
				pat[i] = '1'
			default:
				pat[i] = '0'
			}
		}
		target := trans.TargetFromPatterns(width, string(pat))
		for _, eng := range []preimage.Engine{preimage.EngineBlocking, preimage.EngineSuccessDriven} {
			b.Run(fmt.Sprintf("free%d/%s", k, eng), func(b *testing.B) {
				benchPreimage(b, c, target, cappedOpts(eng))
			})
		}
	}
}

// BenchmarkFig2 — success-driven learning ablation: memoization on vs off
// over growing random circuits.
func BenchmarkFig2(b *testing.B) {
	for _, g := range []int{40, 80, 160, 320} {
		c := gen.SLike(gen.SLikeParams{Seed: 5, Inputs: 8, Latches: 8, Gates: g})
		target := benchTarget(c)
		for _, memo := range []bool{false, true} {
			name := fmt.Sprintf("g%d/memo-off", g)
			if memo {
				name = fmt.Sprintf("g%d/memo-on", g)
			}
			opts := preimage.Options{Engine: preimage.EngineSuccessDriven}
			opts.Core = core.Options{EnableMemo: memo, EnableLearning: true}
			b.Run(name, func(b *testing.B) {
				benchPreimage(b, c, target, opts)
			})
		}
	}
}

// BenchmarkFig3 — cube enlargement: blocking vs lifting enumeration cost
// on the suite (cube counts are reported by cmd/experiments -only fig3).
func BenchmarkFig3(b *testing.B) {
	for _, nc := range gen.Suite() {
		target := benchTarget(nc.Circuit)
		for _, eng := range []preimage.Engine{preimage.EngineBlocking, preimage.EngineLifting} {
			b.Run(fmt.Sprintf("%s/%s", nc.Name, eng), func(b *testing.B) {
				benchPreimage(b, nc.Circuit, target, cappedOpts(eng))
			})
		}
	}
}

// BenchmarkFig4 — XOR-richness sweep: success-driven vs BDD on the random
// family as the logic becomes XOR-dominated.
func BenchmarkFig4(b *testing.B) {
	for _, xf := range []float64{0.05, 0.25, 0.5} {
		c := gen.SLike(gen.SLikeParams{Seed: 9, Inputs: 8, Latches: 8, Gates: 150, XorFraction: xf})
		target := benchTarget(c)
		for _, eng := range []preimage.Engine{preimage.EngineSuccessDriven, preimage.EngineBDD} {
			b.Run(fmt.Sprintf("xf%.2f/%s", xf, eng), func(b *testing.B) {
				benchPreimage(b, c, target, preimage.Options{Engine: eng})
			})
		}
	}
}

// BenchmarkParallelEnumerate — worker-count sweep for the guiding-path
// pool (internal/pool) behind the success-driven engine: the same
// preimage enumerated with 1/2/4/8 workers. The merged cover is
// bit-identical across worker counts (see internal/preimage's
// determinism suite), so ns/op differences are pure scheduling cost or
// speedup. On a single-core host the sweep measures the pool's overhead
// rather than parallel speedup; BENCH_2.json records which one it was.
func BenchmarkParallelEnumerate(b *testing.B) {
	suite := []gen.NamedCircuit{
		{Name: "slike2", Circuit: gen.SLike(gen.SLikeParams{Seed: 2, Inputs: 8, Latches: 8, Gates: 120})},
		{Name: "slike3", Circuit: gen.SLike(gen.SLikeParams{Seed: 3, Inputs: 10, Latches: 10, Gates: 220})},
		{Name: "mult6", Circuit: gen.MultCore(6)},
	}
	for _, nc := range suite {
		target := benchTarget(nc.Circuit)
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/w%d", nc.Name, w), func(b *testing.B) {
				benchPreimage(b, nc.Circuit, target,
					preimage.Options{Engine: preimage.EngineSuccessDriven, Parallel: w})
			})
		}
	}
}

// BenchmarkSimplify — the projection-safe preprocessor on vs off for all
// five engines over the Table 1 suite (one-step preimage) and, under
// /reach, the Table 3 reachability workloads with the success-driven
// engine. Covers are identical either way (internal/preimage's simplify
// equivalence suite pins this), so the on/off ns/op ratio is the pure
// win (or cost) of eliminating auxiliary variables before enumeration.
// The BDD engine never consumes the CNF; its pair is a no-op control.
func BenchmarkSimplify(b *testing.B) {
	engines := []preimage.Engine{
		preimage.EngineBlocking, preimage.EngineLifting, preimage.EngineDisjoint,
		preimage.EngineSuccessDriven, preimage.EngineBDD,
	}
	modes := []struct {
		name string
		mode simplify.Mode
	}{
		{"simplify=off", simplify.Off},
		{"simplify=on", simplify.On},
	}
	for _, nc := range gen.Suite() {
		target := benchTarget(nc.Circuit)
		for _, eng := range engines {
			for _, sm := range modes {
				b.Run(fmt.Sprintf("%s/%s/%s", nc.Name, eng, sm.name), func(b *testing.B) {
					opts := cappedOpts(eng)
					opts.Simplify = sm.mode
					benchPreimage(b, nc.Circuit, target, opts)
				})
			}
		}
	}
	reachSuite := []gen.NamedCircuit{
		{Name: "counter8", Circuit: gen.Counter(8, true, false)},
		{Name: "traffic", Circuit: gen.TrafficLight()},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
	}
	for _, nc := range reachSuite {
		target := benchTarget(nc.Circuit)
		for _, sm := range modes {
			b.Run(fmt.Sprintf("reach/%s/%s", nc.Name, sm.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, err := preimage.Reach(nc.Circuit, target, 6,
						preimage.Options{Engine: preimage.EngineSuccessDriven, Simplify: sm.mode})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable5 — BDD variable-order ablation (interleaved (s,s') pairs
// vs segregated blocks).
func BenchmarkTable5(b *testing.B) {
	suite := []gen.NamedCircuit{
		{Name: "counter12", Circuit: gen.Counter(12, true, false)},
		{Name: "gray6", Circuit: gen.GrayCounter(6)},
		{Name: "mult6", Circuit: gen.MultCore(6)},
	}
	for _, nc := range suite {
		target := benchTarget(nc.Circuit)
		for _, seg := range []bool{false, true} {
			name := nc.Name + "/interleaved"
			if seg {
				name = nc.Name + "/segregated"
			}
			b.Run(name, func(b *testing.B) {
				benchPreimage(b, nc.Circuit, target,
					preimage.Options{Engine: preimage.EngineBDD, BDDSegregatedOrder: seg})
			})
		}
	}
}

// BenchmarkTable4 — decision-order ablation for the success-driven engine.
func BenchmarkTable4(b *testing.B) {
	suite := []gen.NamedCircuit{
		{Name: "counter10", Circuit: gen.Counter(10, true, false)},
		{Name: "gray6", Circuit: gen.GrayCounter(6)},
		{Name: "slike1", Circuit: gen.SLike(gen.SLikeParams{Seed: 1, Inputs: 6, Latches: 6, Gates: 60})},
	}
	orders := []struct {
		name string
		opts preimage.Options
	}{
		{"state-first", preimage.Options{Engine: preimage.EngineSuccessDriven}},
		{"input-first", preimage.Options{Engine: preimage.EngineSuccessDriven, InputFirstOrder: true}},
		{"interleave", preimage.Options{Engine: preimage.EngineSuccessDriven, Interleave: true}},
	}
	for _, nc := range suite {
		target := benchTarget(nc.Circuit)
		for _, o := range orders {
			b.Run(fmt.Sprintf("%s/%s", nc.Name, o.name), func(b *testing.B) {
				benchPreimage(b, nc.Circuit, target, o.opts)
			})
		}
	}
}
